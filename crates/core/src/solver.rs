//! Serial and thread-parallel multi-shift drivers.
//!
//! Both drivers run the same [`Scheduler`] state machine and the same
//! single-shift Arnoldi iterations; the parallel driver maps idle worker
//! threads onto [`Scheduler::next_shift`] exactly as Sec. IV.C prescribes.
//! The workers are not spawned here: the parallel driver submits a
//! [`Task::ShiftSweep`](crate::exec::Task) cohort to the persistent
//! [`Executor`] and joins it as one member, so
//! repeated sweeps (the enforcement loop, batches of models) reuse one
//! long-lived pool instead of respawning scoped threads per sweep.

use crate::band::estimate_band;
use crate::error::SolverError;
use crate::exec::{Executor, SweepOrigin, Task, TaskContext};
use crate::fault::{self, ActiveFaults, FaultPlan};
use crate::scheduler::{Scheduler, SchedulerStats, ShiftTask};
use crate::spectrum::{self, ImaginaryEigenpair};
use parking_lot::{Condvar, Mutex};
use pheig_arnoldi::single_shift::SingleShiftOutcome;
use pheig_arnoldi::{
    block_shift_sweep, build_shift_invert_op, single_shift_iteration_recycled_with, ArnoldiError,
    ArnoldiWorkspace, BlockLaneSpec, CancelToken, RecyclePool, RecycledPair, SingleShiftOptions,
    SweepControl,
};
use pheig_hamiltonian::MultiShiftInvertOp;
use pheig_linalg::C64;
use pheig_model::StateSpace;
use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Reusable solver scratch: one Arnoldi workspace per worker thread.
///
/// A workspace created once and passed to repeated
/// [`find_imaginary_eigenvalues_with`] calls (as the passivity-enforcement
/// loop does) keeps every worker's Krylov basis storage alive across
/// sweeps, eliminating steady-state allocation churn from the hot path.
#[derive(Debug, Default)]
pub struct SolverWorkspace {
    per_thread: Vec<ArnoldiWorkspace>,
}

impl SolverWorkspace {
    /// An empty workspace; per-thread scratch grows on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Grows the per-thread scratch list to `threads` entries.
    fn ensure_threads(&mut self, threads: usize) -> &mut [ArnoldiWorkspace] {
        if self.per_thread.len() < threads {
            self.per_thread.resize_with(threads, ArnoldiWorkspace::new);
        }
        &mut self.per_thread[..threads]
    }
}

/// Options for [`find_imaginary_eigenvalues`].
#[derive(Debug, Clone, PartialEq)]
pub struct SolverOptions {
    /// Worker threads `T`. `1` reproduces the paper's serial baseline.
    pub threads: usize,
    /// Initial intervals per thread, `N = kappa * T` (paper: `kappa >= 2`).
    pub kappa: usize,
    /// Initial-radius overlap factor `alpha >= 1` (paper Eq. (23)).
    pub alpha: f64,
    /// Single-shift Arnoldi tuning.
    pub arnoldi: SingleShiftOptions,
    /// Search band override; `None` estimates `[0, omega_max]` from the
    /// largest Hamiltonian eigenvalue (Sec. IV.A).
    pub band: Option<(f64, f64)>,
    /// Base RNG seed; per-shift start vectors derive from it.
    pub seed: u64,
    /// Reseeded retries when a single-shift iteration fails to certify.
    pub max_shift_retries: usize,
    /// Krylov recycling across the shifts of one sweep: converged Ritz
    /// vectors of completed disks warm-start nearby shifts (kill switch
    /// for A/B measurement; on by default).
    pub recycling: bool,
    /// Maximum shifts batched into one lockstep block solve; `1` runs
    /// every shift solo (the pre-batching behavior).
    pub block_size: usize,
    /// Cooperative cancellation: latch the token and the sweep winds down
    /// at the next restart boundaries, returning whatever is certified
    /// (remaining work becomes named coverage gaps, not an error).
    pub cancel: Option<CancelToken>,
    /// Per-sweep operator-application budget shared by all shifts; on
    /// exhaustion the sweep degrades to a partial result exactly like a
    /// cancellation. `None` is unlimited.
    pub matvec_budget: Option<u64>,
    /// Per-sweep restart budget; same semantics as `matvec_budget`.
    pub restart_budget: Option<u64>,
    /// Fault-injection plan for chaos testing. `None` consults the
    /// `PHEIG_FAULT_PLAN` environment hook; an empty plan (and an unset
    /// variable) arms nothing and costs nothing on the hot path.
    pub fault_plan: Option<FaultPlan>,
}

impl SolverOptions {
    /// Paper-default options (serial).
    pub fn new() -> Self {
        SolverOptions {
            threads: 1,
            kappa: 2,
            alpha: 1.05,
            arnoldi: SingleShiftOptions::default(),
            band: None,
            seed: 0,
            max_shift_retries: 4,
            recycling: true,
            block_size: 4,
            cancel: None,
            matvec_budget: None,
            restart_budget: None,
            fault_plan: None,
        }
    }

    /// Sets the worker thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Enables or disables Krylov recycling across shifts.
    pub fn with_recycling(mut self, recycling: bool) -> Self {
        self.recycling = recycling;
        self
    }

    /// Sets the block-solve batch width (`1` disables batching).
    pub fn with_block_size(mut self, block_size: usize) -> Self {
        self.block_size = block_size.max(1);
        self
    }

    /// Sets the base RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the search band.
    pub fn with_band(mut self, lo: f64, hi: f64) -> Self {
        self.band = Some((lo, hi));
        self
    }

    /// Attaches a cooperative cancellation token.
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Caps the sweep's total operator applications.
    pub fn with_matvec_budget(mut self, matvecs: u64) -> Self {
        self.matvec_budget = Some(matvecs);
        self
    }

    /// Caps the sweep's total restarts.
    pub fn with_restart_budget(mut self, restarts: u64) -> Self {
        self.restart_budget = Some(restarts);
        self
    }

    /// Arms a fault-injection plan (chaos testing).
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }
}

impl Default for SolverOptions {
    fn default() -> Self {
        Self::new()
    }
}

/// Telemetry for one completed single-shift iteration.
#[derive(Debug, Clone)]
pub struct ShiftRecord {
    /// Shift frequency.
    pub omega: f64,
    /// Certified disk radius.
    pub radius: f64,
    /// Operator applications spent.
    pub matvecs: usize,
    /// Restarts spent.
    pub restarts: usize,
    /// Deterministic cost units (matvecs + 3 per restart) used by the
    /// virtual-time simulator.
    pub cost_units: u64,
    /// Recycled warm-start candidates validated for this shift.
    pub warm_candidates: usize,
    /// Warm candidates that locked immediately (one matvec each).
    pub warm_pre_locked: usize,
    /// Wall-clock time of the iteration.
    pub wall: Duration,
}

/// Aggregate run statistics.
#[derive(Debug, Clone)]
pub struct SolverStats {
    /// Scheduler counters (processed / deleted / trimmed / split).
    pub scheduler: SchedulerStats,
    /// Total operator applications across all shifts.
    pub total_matvecs: usize,
    /// Shifts that started with at least one recycled warm candidate.
    pub warm_started_shifts: usize,
    /// Recycled candidates validated across all shifts.
    pub recycle_candidates: usize,
    /// Recycled candidates that locked immediately (warm hits).
    pub recycle_hits: usize,
    /// Shifts the degradation ladder gave up on (their intervals are the
    /// sweep's [`SolverOutcome::coverage_gaps`]).
    pub shifts_quarantined: usize,
    /// Faults the armed [`FaultPlan`] actually fired during this sweep
    /// (always 0 without a plan).
    pub faults_injected: u64,
    /// End-to-end wall time.
    pub wall: Duration,
}

impl SolverStats {
    /// Fraction of validated recycled candidates that locked immediately.
    pub fn recycle_hit_rate(&self) -> f64 {
        if self.recycle_candidates == 0 {
            0.0
        } else {
            self.recycle_hits as f64 / self.recycle_candidates as f64
        }
    }
}

/// Recycling telemetry aggregated across the sweeps of one pipeline stage
/// (the characterization stage runs one sweep; enforcement runs one per
/// accepted or rejected trial step).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecycleCounters {
    /// Sweeps folded into this tally.
    pub sweeps: usize,
    /// Operator applications across those sweeps.
    pub matvecs: usize,
    /// Shifts that started with at least one recycled warm candidate.
    pub warm_started_shifts: usize,
    /// Recycled candidates validated (one matvec each).
    pub recycle_candidates: usize,
    /// Candidates that locked immediately.
    pub recycle_hits: usize,
}

impl RecycleCounters {
    /// Folds one sweep's statistics into the stage tally.
    pub fn absorb(&mut self, stats: &SolverStats) {
        self.sweeps += 1;
        self.matvecs += stats.total_matvecs;
        self.warm_started_shifts += stats.warm_started_shifts;
        self.recycle_candidates += stats.recycle_candidates;
        self.recycle_hits += stats.recycle_hits;
    }

    /// Fraction of validated candidates that locked immediately.
    pub fn hit_rate(&self) -> f64 {
        if self.recycle_candidates == 0 {
            0.0
        } else {
            self.recycle_hits as f64 / self.recycle_candidates as f64
        }
    }
}

/// A shift the sweep gave up on after the degradation ladder (retries,
/// then one cold attempt with widened tolerance) was exhausted, or that
/// was abandoned by a cancellation / budget stop.
///
/// Its interval contribution to [`SolverOutcome::coverage_gaps`] is the
/// part of the band the sweep makes *no claim about*: crossings there may
/// exist undetected.
#[derive(Debug, Clone)]
pub struct QuarantinedShift {
    /// The shift frequency that could not be processed.
    pub omega: f64,
    /// The interval the shift was responsible for when quarantined.
    pub interval: (f64, f64),
    /// The first error that sent the shift down the degradation ladder.
    pub reason: SolverError,
}

/// Result of a full band sweep.
#[derive(Debug, Clone)]
pub struct SolverOutcome {
    /// Sorted crossing frequencies `Omega` (omega >= 0), deduped.
    pub frequencies: Vec<f64>,
    /// The same crossings with eigenvectors (for enforcement).
    pub eigenpairs: Vec<ImaginaryEigenpair>,
    /// The search band that was covered.
    pub band: (f64, f64),
    /// Per-shift telemetry in completion order.
    pub shift_log: Vec<ShiftRecord>,
    /// Shifts the sweep gave up on, in quarantine order. Empty on a
    /// healthy run; non-empty means the result is *partial* and
    /// [`SolverOutcome::coverage_gaps`] names the unexamined intervals.
    pub quarantined: Vec<QuarantinedShift>,
    /// Sub-intervals of `band` that no certified disk covers, sorted and
    /// merged. Empty on a healthy run.
    pub coverage_gaps: Vec<(f64, f64)>,
    /// Fraction of the band length covered by certified disks (`1.0` on a
    /// healthy run). Honest partial-coverage reporting: uncovered
    /// intervals are named in `coverage_gaps`, never silently claimed.
    pub covered_fraction: f64,
    /// Aggregate statistics.
    pub stats: SolverStats,
}

/// Deterministic cost model shared with the simulator.
pub(crate) fn cost_units(out: &SingleShiftOutcome) -> u64 {
    // The refinement applies no operator (its images are cached or
    // reconstructed from the Arnoldi build identity), but its projected
    // eigenproblem and reconstructions still cost wall time that grows
    // with the locked-subspace dimension; charge half a unit per basis
    // vector. This also keeps the modeled work seed-sensitive — how many
    // duplicate/extra shells lock depends on the random start vector.
    (out.matvecs + 3 * out.restarts) as u64 + (out.refine_dim as u64).div_ceil(2)
}

/// Runs one shift task with reseeded retries.
///
/// Retries also *nudge* the shift frequency by a small fraction of the
/// initial radius: exactly symmetric shift placements (notably
/// `omega = 0`, where the Hamiltonian quadruple symmetry makes every
/// shift-inverted shell multiply degenerate) can defeat the Krylov
/// iteration, while any nearby asymmetric shift covers the same interval.
/// The scheduler accepts disks centered at the *actual* shift used.
pub(crate) fn run_shift(
    ss: &StateSpace,
    task: &ShiftTask,
    scale_floor: f64,
    opts: &SolverOptions,
    ws: &mut ArnoldiWorkspace,
    warm: &[RecycledPair],
    control: &SweepControl,
) -> Result<SingleShiftOutcome, SolverError> {
    // Tolerances must track the *local* magnitude: the global spectral
    // radius of M can exceed the pole band by orders of magnitude (large
    // real eigenvalues from strong residues), and tying eigenvalue
    // resolution to it would swallow genuine crossing separations.
    let scale = task.omega.abs().max(scale_floor);
    let min_radius = 1e-12 * scale.max(1.0);
    let mut last = String::from("no attempts made");
    for attempt in 0..opts.max_shift_retries.max(1) {
        if control.should_stop() {
            last = String::from("sweep stopped (cancelled or budget exhausted)");
            break;
        }
        let seed = opts
            .seed
            .wrapping_add((task.id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(attempt as u64);
        // Later attempts enlarge the Krylov subspace and restart budget:
        // dense pole clusters (hundreds of log-spaced poles per column)
        // produce nearly-degenerate eigenvalue shells that a 60-vector
        // space cannot always split.
        let mut aopts = opts.arnoldi.clone().with_seed(seed);
        aopts.control = control.clone();
        aopts.max_subspace += 30 * attempt;
        aopts.max_restarts += 8 * attempt;
        let nudge = match attempt {
            0 => 0.0,
            k => task.rho0 * 0.017 * k as f64 * if k % 2 == 0 { -1.0 } else { 1.0 },
        };
        let omega = (task.omega + nudge).max(0.0);
        // Warm candidates apply to the first attempt only: a warm attempt
        // that failed to certify retries cold (the recycled vectors did
        // not help, and the nudged shift invalidates their distances).
        let attempt_warm = if attempt == 0 { warm } else { &[] };
        match single_shift_iteration_recycled_with(
            ss,
            omega,
            task.rho0,
            scale,
            &aopts,
            ws,
            attempt_warm,
        ) {
            Ok(out) if out.radius > min_radius => return Ok(out),
            Ok(out) => last = format!("radius {} below resolution", out.radius),
            Err(e) => last = e.to_string(),
        }
    }
    Err(SolverError::ShiftFailed {
        omega: task.omega,
        reason: last,
    })
}

/// Gathers recycled warm-start candidates for a pending shift.
///
/// Reach slightly exceeds the initial radius guess (candidates just
/// outside the expected disk still cap the certificate via near-miss
/// estimates); the cap is the per-shift collect target plus slack,
/// rounded up to even so Hamiltonian mirror pairs are never split.
fn gather_warm(pool: &RecyclePool, task: &ShiftTask, opts: &SolverOptions) -> Vec<RecycledPair> {
    if !opts.recycling {
        return Vec::new();
    }
    let reach = task.rho0 * 1.25;
    let cap = (opts.arnoldi.n_eigs + 4) & !1;
    pool.gather(C64::from_imag(task.omega), reach, cap)
}

/// Classification tolerance for "purely imaginary": a safety factor above
/// the Arnoldi eigenvalue tolerance, scaled by the pole band (crossings
/// cannot occur beyond the model's resonances).
pub(crate) fn axis_tolerance(opts: &SolverOptions, pole_scale: f64) -> f64 {
    1e3 * opts.arnoldi.tol * pole_scale.max(f64::MIN_POSITIVE)
}

/// The frequency scale on which crossings live: the fastest pole resonance.
pub(crate) fn pole_scale(ss: &StateSpace) -> f64 {
    ss.a().max_natural_frequency().max(f64::MIN_POSITIVE)
}

/// Assembles the outcome from completed shifts.
fn assemble(
    band: (f64, f64),
    axis_scale: f64,
    sweep: SweepOutput,
    opts: &SolverOptions,
    faults_injected: u64,
    wall: Duration,
) -> SolverOutcome {
    let SweepOutput {
        mut completions,
        stats: sched_stats,
        gaps,
        quarantined,
    } = sweep;
    // Under `threads > 1` completions land in mutex-acquisition order,
    // which varies run to run; sort by shift frequency (radius as the
    // tie-break) so `shift_log` and everything derived from it is
    // deterministic for a given completion set.
    completions.sort_by(|a, b| {
        a.1.theta
            .im
            .total_cmp(&b.1.theta.im)
            .then(a.1.radius.total_cmp(&b.1.radius))
    });
    let scale = axis_scale;
    let axis_tol = axis_tolerance(opts, scale);
    let mut all_pairs = Vec::new();
    let mut shift_log = Vec::with_capacity(completions.len());
    let mut total_matvecs = 0usize;
    let mut warm_started_shifts = 0usize;
    let mut recycle_candidates = 0usize;
    let mut recycle_hits = 0usize;
    for (_task, out, shift_wall) in completions {
        total_matvecs += out.matvecs;
        warm_started_shifts += usize::from(out.warm_candidates > 0);
        recycle_candidates += out.warm_candidates;
        recycle_hits += out.warm_pre_locked;
        shift_log.push(ShiftRecord {
            omega: out.theta.im,
            radius: out.radius,
            matvecs: out.matvecs,
            restarts: out.restarts,
            cost_units: cost_units(&out),
            warm_candidates: out.warm_candidates,
            warm_pre_locked: out.warm_pre_locked,
            wall: shift_wall,
        });
        all_pairs.extend(out.in_disk);
    }
    let eigs = spectrum::extract_imaginary(&all_pairs, axis_tol);
    let mut eigenpairs = spectrum::dedupe(eigs, axis_tol.max(1e-12 * scale));
    // Certified disks may extend well past the requested band —
    // warm-started certificates especially, since donated far pairs
    // widen them — and everything inside a disk is a true eigenvalue.
    // But a caller who restricted the band asked about that band:
    // report crossings only up to half a band-width past the top edge
    // (the documented "disks slightly overshoot" slack). The disks
    // themselves stay in `shift_log`, so coverage checks are unchanged.
    let report_cap = band.1 + 0.5 * (band.1 - band.0);
    eigenpairs.retain(|e| e.lambda.im <= report_cap);
    let frequencies = spectrum::frequencies(&eigenpairs);
    let band_len = (band.1 - band.0).max(f64::MIN_POSITIVE);
    let gap_len: f64 = gaps.iter().map(|&(lo, hi)| hi - lo).sum();
    let covered_fraction = (1.0 - gap_len / band_len).clamp(0.0, 1.0);
    let shifts_quarantined = sched_stats.quarantined;
    SolverOutcome {
        frequencies,
        eigenpairs,
        band,
        shift_log,
        quarantined,
        coverage_gaps: gaps,
        covered_fraction,
        stats: SolverStats {
            scheduler: sched_stats,
            total_matvecs,
            warm_started_shifts,
            recycle_candidates,
            recycle_hits,
            shifts_quarantined,
            faults_injected,
            wall,
        },
    }
}

/// Locates all purely imaginary Hamiltonian eigenvalues of a macromodel.
///
/// With `opts.threads == 1` this is the paper's serial bisection sweep;
/// with `T > 1` it runs the dynamic parallel scheduler on `T` OS threads.
///
/// # Errors
///
/// * [`SolverError::BandEstimation`] / [`SolverError::Hamiltonian`] for
///   degenerate models;
/// * [`SolverError::TaskPanicked`] when a sweep task panicked and the
///   remaining members could not finish the band without it.
///
/// A shift that cannot be certified even after reseeded retries is *not*
/// an error: the degradation ladder retries it once cold, then
/// quarantines it, and the sweep returns a partial result whose
/// [`SolverOutcome::coverage_gaps`] name the unexamined intervals.
///
/// # Example
///
/// ```
/// use pheig_core::solver::{find_imaginary_eigenvalues, SolverOptions};
/// use pheig_model::generator::{generate_case, CaseSpec};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let ss = generate_case(&CaseSpec::new(20, 2).with_seed(1).with_target_crossings(2))?
///     .realize();
/// let out = find_imaginary_eigenvalues(&ss, &SolverOptions::default())?;
/// assert!(out.frequencies.windows(2).all(|w| w[0] <= w[1]));
/// # Ok(())
/// # }
/// ```
pub fn find_imaginary_eigenvalues(
    ss: &StateSpace,
    opts: &SolverOptions,
) -> Result<SolverOutcome, SolverError> {
    find_imaginary_eigenvalues_with(ss, opts, &mut SolverWorkspace::new())
}

/// [`find_imaginary_eigenvalues`] with caller-owned scratch.
///
/// Repeated sweeps over perturbed models (the passivity-enforcement inner
/// loop) should create one [`SolverWorkspace`] and pass it to every call:
/// each worker thread then reuses its Krylov storage across shifts *and*
/// across sweeps.
///
/// # Errors
///
/// Same as [`find_imaginary_eigenvalues`], plus
/// [`SolverError::InvalidBand`] / [`SolverError::InvalidAlpha`] for
/// unusable option overrides.
pub fn find_imaginary_eigenvalues_with(
    ss: &StateSpace,
    opts: &SolverOptions,
    ws: &mut SolverWorkspace,
) -> Result<SolverOutcome, SolverError> {
    find_imaginary_eigenvalues_tagged(ss, opts, ws, SweepOrigin::Characterization)
}

/// [`find_imaginary_eigenvalues_with`] with an explicit executor-telemetry
/// tag: the enforcement loop marks its re-characterization sweeps as
/// [`SweepOrigin::Enforcement`] so pool statistics show which layer the
/// sweep work serves.
pub(crate) fn find_imaginary_eigenvalues_tagged(
    ss: &StateSpace,
    opts: &SolverOptions,
    ws: &mut SolverWorkspace,
    origin: SweepOrigin,
) -> Result<SolverOutcome, SolverError> {
    let t0 = Instant::now();
    validate_options(opts)?;
    // `PHEIG_NO_RECYCLE` kill switch: force recycling off regardless of
    // options, so A/B and incident triage never require a rebuild.
    static NO_RECYCLE: OnceLock<bool> = OnceLock::new();
    let no_recycle =
        *NO_RECYCLE.get_or_init(|| std::env::var_os("PHEIG_NO_RECYCLE").is_some_and(|v| v != "0"));
    let mut eff_opts = None;
    let opts = if no_recycle && opts.recycling {
        &*eff_opts.insert(opts.clone().with_recycling(false))
    } else {
        opts
    };
    // Fault plan: explicit options win; otherwise the `PHEIG_FAULT_PLAN`
    // environment hook. Budget overrides fold into the plan so both
    // channels share one activation path.
    let mut plan = match &opts.fault_plan {
        Some(p) => p.clone(),
        None => fault::plan_from_env()?.unwrap_or_default(),
    };
    if opts.matvec_budget.is_some() {
        plan.budget_matvecs = opts.matvec_budget;
    }
    if opts.restart_budget.is_some() {
        plan.budget_restarts = opts.restart_budget;
    }
    let faults = plan.activate();
    let mut control = faults.control.clone();
    if let Some(token) = &opts.cancel {
        control.cancel = Some(token.clone());
    }
    if faults.wants_injector_pressure() {
        // Deterministically overflow the executor's injector so the
        // push-fail -> inline-execute recovery path runs under test.
        Executor::exercise_injector_backpressure(crate::exec::injector_capacity() + 128);
    }
    let band = match opts.band {
        Some(b) => b,
        None => estimate_band(ss, &opts.arnoldi)?,
    };
    let n_intervals = (opts.kappa.max(2) * opts.threads.max(1)).max(4);
    let scheduler = Scheduler::new(band, n_intervals, opts.alpha);
    let scale = pole_scale(ss);

    let sweep = if opts.threads <= 1 {
        run_serial(ss, scheduler, scale, opts, ws, &control, &faults)?
    } else {
        run_parallel(ss, scheduler, scale, opts, ws, origin, &control, &faults)?
    };
    Ok(assemble(
        band,
        scale,
        sweep,
        opts,
        faults.faults_injected(),
        t0.elapsed(),
    ))
}

/// Rejects option combinations the scheduler cannot run on: a scheduler
/// constructed over a garbage band or overlap factor would silently cover
/// nothing (or spin), so fail fast with a typed error instead.
fn validate_options(opts: &SolverOptions) -> Result<(), SolverError> {
    if let Some((lo, hi)) = opts.band {
        if !lo.is_finite() || !hi.is_finite() || lo < 0.0 || hi <= lo {
            return Err(SolverError::InvalidBand { lo, hi });
        }
    }
    if !opts.alpha.is_finite() || opts.alpha < 1.0 {
        return Err(SolverError::InvalidAlpha { alpha: opts.alpha });
    }
    Ok(())
}

type Completions = Vec<(ShiftTask, SingleShiftOutcome, Duration)>;

/// What a sweep driver hands back: completions plus the partial-coverage
/// record (quarantined shifts and the gaps they left).
struct SweepOutput {
    completions: Completions,
    stats: SchedulerStats,
    gaps: Vec<(f64, f64)>,
    quarantined: Vec<QuarantinedShift>,
}

/// Converts a finished [`SharedState`] (plus any contained panic payload)
/// into a driver result. A panic payload only becomes an error when the
/// sweep did not finish: an injected worker panic whose siblings still
/// completed the band is a *contained* fault, not a failure.
fn finish_state(
    state: SharedState,
    payload: Option<Box<dyn Any + Send>>,
) -> Result<SweepOutput, SolverError> {
    if let Some(e) = state.error {
        return Err(e);
    }
    if let Some(p) = payload {
        if !state.scheduler.is_done() {
            return Err(SolverError::from_panic(p.as_ref()));
        }
    }
    let stats = state.scheduler.stats();
    let gaps = state.scheduler.coverage_gaps();
    Ok(SweepOutput {
        completions: state.completions,
        stats,
        gaps,
        quarantined: state.quarantined,
    })
}

#[allow(clippy::too_many_arguments)]
fn run_serial(
    ss: &StateSpace,
    scheduler: Scheduler,
    scale: f64,
    opts: &SolverOptions,
    ws: &mut SolverWorkspace,
    control: &SweepControl,
    faults: &ActiveFaults,
) -> Result<SweepOutput, SolverError> {
    // The serial driver is one inline membership of the same sweep loop
    // the parallel cohort runs: identical batching, recycling, and
    // cancellation logic, with the mutex never contended.
    let shared = Mutex::new(SharedState::new(scheduler));
    let cv = Condvar::new();
    let share = SweepShare {
        ss,
        scale,
        opts,
        shared: &shared,
        cv: &cv,
        origin: SweepOrigin::Characterization,
        control,
        faults,
    };
    let run = catch_unwind(AssertUnwindSafe(|| {
        share.run(&mut TaskContext::new(ws));
    }));
    let state = shared.into_inner();
    finish_state(state, run.err())
}

struct SharedState {
    scheduler: Scheduler,
    pool: RecyclePool,
    completions: Completions,
    quarantined: Vec<QuarantinedShift>,
    error: Option<SolverError>,
}

impl SharedState {
    fn new(scheduler: Scheduler) -> Self {
        SharedState {
            scheduler,
            pool: RecyclePool::new(),
            completions: Vec::new(),
            quarantined: Vec::new(),
            error: None,
        }
    }
}

/// Shared state of one multi-shift sweep cohort: the scheduler (and its
/// completion log) behind one lock, plus everything a member needs to run
/// shifts. Public only as a [`Task::ShiftSweep`] payload; constructed and
/// owned by the parallel driver, which joins the cohort itself.
pub struct SweepShare<'a> {
    ss: &'a StateSpace,
    scale: f64,
    opts: &'a SolverOptions,
    shared: &'a Mutex<SharedState>,
    cv: &'a Condvar,
    origin: SweepOrigin,
    control: &'a SweepControl,
    faults: &'a ActiveFaults,
}

impl SweepShare<'_> {
    pub(crate) fn origin(&self) -> SweepOrigin {
        self.origin
    }

    /// One cohort membership: pull batches of shifts until the scheduler
    /// is done or an error is recorded. This is Sec. IV.C's idle-worker
    /// loop; a member finding the queue momentarily empty *waits*
    /// (another member's completion may split intervals and refill it)
    /// and wakes on every completion.
    ///
    /// Each pull takes up to `block_size` pending shifts in one lock
    /// acquisition, together with their recycled warm-start candidates,
    /// then runs them as one lockstep block solve outside the lock.
    pub(crate) fn run(&self, ctx: &mut TaskContext<'_>) {
        let block_cap = self.opts.block_size.max(1);
        loop {
            // An injected worker panic fires here, at the pull boundary
            // with nothing in flight and no lock held: what's under test
            // is the containment machinery (latch completion, workspace
            // return, typed surfacing), not torn scheduler state.
            if self.faults.should_panic_task() {
                panic!("injected fault: solver task panic at pull boundary");
            }
            let (batch, warms) = {
                let mut guard = self.shared.lock();
                loop {
                    if guard.error.is_some() || guard.scheduler.is_done() {
                        self.cv.notify_all();
                        return;
                    }
                    if self.control.should_stop() {
                        // Cancelled or out of budget: stop pulling new
                        // work and quarantine every remaining tentative so
                        // the sweep terminates with *named* gaps instead
                        // of spinning (partial result, not an error).
                        self.drain_stopped(&mut guard);
                        if guard.scheduler.is_done() {
                            self.cv.notify_all();
                            return;
                        }
                        self.cv.wait(&mut guard);
                        continue;
                    }
                    if let Some(first) = guard.scheduler.next_shift() {
                        let mut batch = vec![first];
                        // Progressive batching: a batch pull commits every
                        // lane *before* its neighbors' results can donate,
                        // so batching ahead of a young pool re-spends the
                        // matvecs recycling would have saved. Widen the
                        // block only as donors accumulate (cap `1 + donors`
                        // — the cold sweep opener always runs solo).
                        let donor_cap = if self.opts.recycling {
                            1 + guard.pool.len()
                        } else {
                            usize::MAX
                        };
                        while batch.len() < block_cap.min(donor_cap) {
                            match guard.scheduler.next_shift() {
                                Some(t) => batch.push(t),
                                None => break,
                            }
                        }
                        let warms: Vec<Vec<RecycledPair>> = batch
                            .iter()
                            .map(|t| gather_warm(&guard.pool, t, self.opts))
                            .collect();
                        break (batch, warms);
                    }
                    self.cv.wait(&mut guard);
                }
            };
            let lane_ws = ctx.workspace.ensure_threads(batch.len());
            if batch.len() == 1 {
                self.run_solo(&batch[0], &warms[0], &mut lane_ws[0]);
            } else {
                self.run_block(&batch, warms, lane_ws);
            }
        }
    }

    /// Quarantines every tentative shift still queued after a cancel or
    /// budget stop; their intervals become reported coverage gaps.
    fn drain_stopped(&self, state: &mut SharedState) {
        while let Some(t) = state.scheduler.next_shift() {
            let reason = SolverError::ShiftFailed {
                omega: t.omega,
                reason: if self.control.is_cancelled() {
                    "sweep cancelled before this shift ran".to_string()
                } else {
                    "sweep budget exhausted before this shift ran".to_string()
                },
            };
            state.scheduler.quarantine(&t);
            state.quarantined.push(QuarantinedShift {
                omega: t.omega,
                interval: t.interval,
                reason,
            });
        }
    }

    /// Runs one shift solo (with retries) and records the result.
    ///
    /// A finished solo result is always *completed*, never cancelled: at
    /// completion time the work is already spent, and a certified disk is
    /// always sound to hand the scheduler — cancellation only pays when
    /// it aborts a shift early (the block driver's round-boundary polls).
    ///
    /// A panicking iteration is contained here, per shift, and fed into
    /// the same degradation ladder as an ordinary failure.
    fn run_solo(&self, task: &ShiftTask, warm: &[RecycledPair], ws: &mut ArnoldiWorkspace) {
        let started = Instant::now();
        let result = catch_unwind(AssertUnwindSafe(|| {
            run_shift(self.ss, task, self.scale, self.opts, ws, warm, self.control)
        }))
        .unwrap_or_else(|p| Err(SolverError::from_panic(p.as_ref())));
        match result {
            Ok(out) => self.record(task, out, started),
            Err(first) => self.degrade(task, ws, started, first),
        }
    }

    /// Records one certified completion under the lock.
    fn record(&self, task: &ShiftTask, out: SingleShiftOutcome, started: Instant) {
        let mut guard = self.shared.lock();
        guard.scheduler.complete(task, out.theta.im, out.radius);
        if self.opts.recycling {
            guard.pool.record(out.theta.im, &out);
        }
        guard
            .completions
            .push((task.clone(), out, started.elapsed()));
        drop(guard);
        self.cv.notify_all();
    }

    /// The degradation ladder for a breaking-down shift: one *cold*
    /// attempt (no recycled warm starts, fresh seed, tolerance widened
    /// 100x but never past 1e-5), then quarantine. Transient faults —
    /// a one-shot injected NaN, a flaky near-degenerate start vector —
    /// recover on the cold attempt; persistent breakdown quarantines the
    /// shift so sibling shifts and the sweep itself keep going.
    fn degrade(
        &self,
        task: &ShiftTask,
        ws: &mut ArnoldiWorkspace,
        started: Instant,
        first: SolverError,
    ) {
        if !self.control.should_stop() {
            let mut cold = self.opts.clone();
            cold.arnoldi.tol = (cold.arnoldi.tol * 100.0).min(1e-5);
            cold.max_shift_retries = 1;
            cold.recycling = false;
            cold.seed ^= 0xC01D_C01D;
            let retried = catch_unwind(AssertUnwindSafe(|| {
                run_shift(self.ss, task, self.scale, &cold, ws, &[], self.control)
            }))
            .unwrap_or_else(|p| Err(SolverError::from_panic(p.as_ref())));
            if let Ok(out) = retried {
                self.record(task, out, started);
                return;
            }
        }
        let mut guard = self.shared.lock();
        guard.scheduler.quarantine(task);
        guard.quarantined.push(QuarantinedShift {
            omega: task.omega,
            interval: task.interval,
            reason: first,
        });
        drop(guard);
        self.cv.notify_all();
    }

    /// Runs a batch of shifts as one lockstep block solve; lanes that
    /// fail (below-resolution radius, Arnoldi failure) fall back to the
    /// solo retry path, and lanes whose interval a sibling's completion
    /// covered are cancelled at their next round boundary.
    fn run_block(
        &self,
        batch: &[ShiftTask],
        warms: Vec<Vec<RecycledPair>>,
        lane_ws: &mut [ArnoldiWorkspace],
    ) {
        let attempted = catch_unwind(AssertUnwindSafe(|| {
            self.try_block(batch, warms, &mut *lane_ws)
        }));
        let failed: Vec<usize> = match attempted {
            Ok(Some(failed)) => failed,
            // Lane operator construction failed (irreparably singular
            // shift): run every lane through the solo retry path.
            Ok(None) => (0..batch.len()).collect(),
            // The block solve panicked mid-superstep. `on_complete` may
            // already have completed (or cancelled) some lanes before the
            // unwind, so retry only the lanes still in flight — blindly
            // retrying all of them would double-complete the scheduler.
            Err(_) => {
                let guard = self.shared.lock();
                (0..batch.len())
                    .filter(|&l| guard.scheduler.is_in_flight(batch[l].id))
                    .collect()
            }
        };
        for l in failed {
            let task = &batch[l];
            let warm = {
                let mut guard = self.shared.lock();
                if guard.error.is_some() {
                    return;
                }
                // A sibling's completion may have covered this lane while
                // the block ran; drop the redundant retry.
                if guard.scheduler.should_cancel(task.id) {
                    guard.scheduler.cancel(task);
                    drop(guard);
                    self.cv.notify_all();
                    continue;
                }
                gather_warm(&guard.pool, task, self.opts)
            };
            self.run_solo(task, &warm, &mut lane_ws[0]);
        }
    }

    /// Attempts the batched block solve proper. Returns the lanes needing
    /// a solo fallback, or `None` when a lane operator could not be built
    /// (then *every* lane still needs running).
    fn try_block(
        &self,
        batch: &[ShiftTask],
        warms: Vec<Vec<RecycledPair>>,
        lane_ws: &mut [ArnoldiWorkspace],
    ) -> Option<Vec<usize>> {
        let started = Instant::now();
        let mut lane_ops = Vec::with_capacity(batch.len());
        for task in batch {
            let lane_scale = task.omega.abs().max(self.scale);
            lane_ops.push(build_shift_invert_op(self.ss, task.omega, lane_scale).ok()?);
        }
        let block = MultiShiftInvertOp::from_ops(lane_ops);
        let specs: Vec<BlockLaneSpec> = batch
            .iter()
            .zip(warms)
            .map(|(task, warm)| {
                // First-attempt seed of `run_shift`'s retry loop: a cold
                // block lane is bitwise identical to solo attempt 0.
                let seed = self
                    .opts
                    .seed
                    .wrapping_add((task.id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                BlockLaneSpec {
                    rho0: task.rho0,
                    scale: task.omega.abs().max(self.scale),
                    opts: self
                        .opts
                        .arnoldi
                        .clone()
                        .with_seed(seed)
                        .with_control(self.control.clone()),
                    warm,
                }
            })
            .collect();
        let mut failed: Vec<usize> = Vec::new();
        let mut should_cancel = |l: usize| self.shared.lock().scheduler.should_cancel(batch[l].id);
        let mut on_complete = |l: usize, res: Result<SingleShiftOutcome, ArnoldiError>| {
            let task = &batch[l];
            let mut guard = self.shared.lock();
            match res {
                Ok(out) => {
                    let lane_scale = task.omega.abs().max(self.scale);
                    let min_radius = 1e-12 * lane_scale.max(1.0);
                    if out.radius > min_radius {
                        guard.scheduler.complete(task, out.theta.im, out.radius);
                        if self.opts.recycling {
                            guard.pool.record(out.theta.im, &out);
                        }
                        guard
                            .completions
                            .push((task.clone(), out, started.elapsed()));
                    } else {
                        failed.push(l);
                    }
                }
                Err(ArnoldiError::Cancelled) => guard.scheduler.cancel(task),
                Err(_) => failed.push(l),
            }
            drop(guard);
            self.cv.notify_all();
        };
        block_shift_sweep(
            &block,
            &specs,
            lane_ws,
            &mut should_cancel,
            &mut on_complete,
        );
        Some(failed)
    }
}

#[allow(clippy::too_many_arguments)]
fn run_parallel(
    ss: &StateSpace,
    scheduler: Scheduler,
    scale: f64,
    opts: &SolverOptions,
    ws: &mut SolverWorkspace,
    origin: SweepOrigin,
    control: &SweepControl,
    faults: &ActiveFaults,
) -> Result<SweepOutput, SolverError> {
    let shared = Mutex::new(SharedState::new(scheduler));
    let cv = Condvar::new();
    let share = SweepShare {
        ss,
        scale,
        opts,
        shared: &shared,
        cv: &cv,
        origin,
        control,
        faults,
    };
    // T-way sweep = T-1 pool members + this thread. When already inside a
    // pool (a batch job fanning out its sweep), the cohort lands on that
    // same pool instead of spawning a nested one.
    let members = opts.threads.saturating_sub(1);
    let exec = Executor::current_or_pool(members);
    let run = exec.run_cohort_caught(Task::ShiftSweep(&share), members, &mut TaskContext::new(ws));
    let state = shared.into_inner();
    finish_state(state, run.err())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pheig_hamiltonian::dense_hamiltonian;
    use pheig_linalg::eig::eig_real;
    use pheig_model::generator::{generate_case, CaseSpec};

    /// Oracle crossings from the dense Hamiltonian spectrum.
    fn oracle_crossings(ss: &StateSpace) -> Vec<f64> {
        let m = dense_hamiltonian(ss).unwrap();
        let scale = m.max_abs();
        let mut out: Vec<f64> = eig_real(&m)
            .unwrap()
            .into_iter()
            .filter(|z| z.re.abs() <= 1e-8 * scale && z.im > 0.0)
            .map(|z| z.im)
            .collect();
        out.sort_by(|a, b| a.partial_cmp(b).unwrap());
        out
    }

    fn assert_matches_oracle(got: &[f64], want: &[f64], scale: f64) {
        assert_eq!(
            got.len(),
            want.len(),
            "crossing count mismatch: got {got:?}, oracle {want:?}"
        );
        for (g, w) in got.iter().zip(want) {
            assert!((g - w).abs() < 1e-5 * scale, "crossing {g} vs oracle {w}");
        }
    }

    #[test]
    fn serial_matches_dense_oracle_nonpassive() {
        let ss = generate_case(&CaseSpec::new(24, 2).with_seed(31).with_target_crossings(4))
            .unwrap()
            .realize();
        let want = oracle_crossings(&ss);
        assert!(!want.is_empty());
        let out = find_imaginary_eigenvalues(&ss, &SolverOptions::default()).unwrap();
        assert_matches_oracle(&out.frequencies, &want, out.band.1);
    }

    #[test]
    fn serial_passive_model_has_empty_omega() {
        let ss = generate_case(&CaseSpec::new(20, 2).with_seed(8).with_target_crossings(0))
            .unwrap()
            .realize();
        let out = find_imaginary_eigenvalues(&ss, &SolverOptions::default()).unwrap();
        assert!(out.frequencies.is_empty(), "got {:?}", out.frequencies);
        assert!(out.stats.scheduler.processed > 0);
    }

    #[test]
    fn parallel_agrees_with_serial() {
        let ss = generate_case(&CaseSpec::new(30, 3).with_seed(12).with_target_crossings(6))
            .unwrap()
            .realize();
        let serial = find_imaginary_eigenvalues(&ss, &SolverOptions::default()).unwrap();
        for threads in [2, 4] {
            let par =
                find_imaginary_eigenvalues(&ss, &SolverOptions::default().with_threads(threads))
                    .unwrap();
            assert_eq!(
                par.frequencies.len(),
                serial.frequencies.len(),
                "T={threads}: {:?} vs {:?}",
                par.frequencies,
                serial.frequencies
            );
            for (a, b) in par.frequencies.iter().zip(&serial.frequencies) {
                assert!((a - b).abs() < 1e-5 * serial.band.1, "T={threads}");
            }
        }
    }

    #[test]
    fn eigenpairs_carry_eigenvectors() {
        let ss = generate_case(&CaseSpec::new(16, 2).with_seed(21).with_target_crossings(2))
            .unwrap()
            .realize();
        let out = find_imaginary_eigenvalues(&ss, &SolverOptions::default()).unwrap();
        let m = dense_hamiltonian(&ss).unwrap().to_c64();
        for e in &out.eigenpairs {
            assert_eq!(e.vector.len(), 2 * ss.order());
            let av = m.matvec(&e.vector);
            let mut resid = 0.0f64;
            for (avi, vi) in av.iter().zip(&e.vector) {
                resid = resid.max((*avi - e.lambda * *vi).abs());
            }
            assert!(resid < 1e-5 * m.max_abs(), "eigenvector residual {resid}");
        }
    }

    #[test]
    fn explicit_band_override_is_respected() {
        let ss = generate_case(&CaseSpec::new(16, 2).with_seed(2))
            .unwrap()
            .realize();
        let out =
            find_imaginary_eigenvalues(&ss, &SolverOptions::default().with_band(0.0, 3.0)).unwrap();
        assert_eq!(out.band, (0.0, 3.0));
        for w in &out.frequencies {
            // Disks can slightly exceed the band; crossings reported should
            // still be near it.
            assert!(*w <= 3.0 * 1.5);
        }
    }

    #[test]
    fn garbage_options_are_rejected_with_typed_errors() {
        let ss = generate_case(&CaseSpec::new(10, 2).with_seed(1))
            .unwrap()
            .realize();
        let cases: &[(Option<(f64, f64)>, f64)] = &[
            (Some((f64::NAN, 5.0)), 1.05),
            (Some((0.0, f64::INFINITY)), 1.05),
            (Some((3.0, 1.0)), 1.05),
            (Some((2.0, 2.0)), 1.05),
            (Some((-1.0, 5.0)), 1.05),
            (None, f64::NAN),
            (None, 0.5),
        ];
        for &(band, alpha) in cases {
            let opts = SolverOptions {
                band,
                alpha,
                ..SolverOptions::default()
            };
            let err = find_imaginary_eigenvalues(&ss, &opts).unwrap_err();
            match (band, &err) {
                (Some(_), SolverError::InvalidBand { .. }) => {}
                (None, SolverError::InvalidAlpha { .. }) => {}
                other => panic!("band={band:?} alpha={alpha}: wrong error {other:?}"),
            }
        }
        // Valid overrides still pass validation.
        assert!(
            find_imaginary_eigenvalues(&ss, &SolverOptions::default().with_band(0.0, 3.0)).is_ok()
        );
    }

    #[test]
    fn persistent_breakdown_quarantines_with_honest_gaps() {
        // Force every shift to fail: a zero restart budget means no Ritz
        // value can ever converge, so the degradation ladder (retries,
        // then one cold widened-tolerance attempt) is exhausted on every
        // shift. The sweep must terminate with an honest partial result —
        // named gaps spanning the band — not an error and not a deadlock.
        let ss = generate_case(&CaseSpec::new(16, 2).with_seed(4).with_target_crossings(2))
            .unwrap()
            .realize();
        let mut opts = SolverOptions::default().with_threads(4);
        opts.arnoldi.max_restarts = 0;
        opts.max_shift_retries = 1;
        for threads in [4usize, 1] {
            opts.threads = threads;
            let out = find_imaginary_eigenvalues(&ss, &opts).unwrap();
            assert!(!out.quarantined.is_empty(), "T={threads}");
            assert_eq!(out.stats.shifts_quarantined, out.quarantined.len());
            assert!(out
                .quarantined
                .iter()
                .all(|q| matches!(q.reason, SolverError::ShiftFailed { .. })));
            let gap_len: f64 = out.coverage_gaps.iter().map(|(a, b)| b - a).sum();
            let band_len = out.band.1 - out.band.0;
            assert!(
                gap_len > 0.99 * band_len,
                "T={threads}: gaps {:?} should span the band {:?}",
                out.coverage_gaps,
                out.band
            );
            assert!(out.covered_fraction < 0.01, "T={threads}");
            assert!(out.frequencies.is_empty(), "T={threads}");
        }
    }

    #[test]
    fn budget_exhaustion_returns_partial_result_not_error() {
        let ss = generate_case(&CaseSpec::new(24, 2).with_seed(31).with_target_crossings(4))
            .unwrap()
            .realize();
        // A tiny matvec budget stops the sweep almost immediately.
        let opts = SolverOptions::default().with_matvec_budget(1);
        let out = find_imaginary_eigenvalues(&ss, &opts).unwrap();
        assert!(out.covered_fraction < 1.0);
        assert!(!out.quarantined.is_empty());
        assert!(!out.coverage_gaps.is_empty());
        // Every reported gap overlaps a quarantined shift's interval, and
        // the gaps never exceed what was actually given up.
        for &(lo, hi) in &out.coverage_gaps {
            assert!(out
                .quarantined
                .iter()
                .any(|q| q.interval.1 > lo && q.interval.0 < hi));
        }
        let gap_len: f64 = out.coverage_gaps.iter().map(|(a, b)| b - a).sum();
        let quarantined_len: f64 = out
            .quarantined
            .iter()
            .map(|q| q.interval.1 - q.interval.0)
            .sum();
        assert!(gap_len <= quarantined_len + 1e-9 * (out.band.1 - out.band.0));
        // A generous budget changes nothing.
        let opts = SolverOptions::default().with_matvec_budget(10_000_000);
        let full = find_imaginary_eigenvalues(&ss, &opts).unwrap();
        assert_eq!(full.covered_fraction, 1.0);
        assert!(full.quarantined.is_empty());
    }

    #[test]
    fn pre_cancelled_sweep_degrades_to_empty_partial_result() {
        let ss = generate_case(&CaseSpec::new(16, 2).with_seed(4).with_target_crossings(2))
            .unwrap()
            .realize();
        let token = CancelToken::new();
        token.cancel();
        for threads in [1usize, 4] {
            let opts = SolverOptions::default()
                .with_threads(threads)
                .with_cancel(token.clone());
            let out = find_imaginary_eigenvalues(&ss, &opts).unwrap();
            assert!(out.frequencies.is_empty(), "T={threads}");
            assert!(out.covered_fraction < 0.01, "T={threads}");
            assert!(out
                .quarantined
                .iter()
                .all(|q| format!("{}", q.reason).contains("cancelled")));
        }
    }

    #[test]
    fn injected_worker_panic_is_contained_in_parallel_and_typed_in_serial() {
        let ss = generate_case(&CaseSpec::new(16, 2).with_seed(4).with_target_crossings(2))
            .unwrap()
            .realize();
        let plan = FaultPlan {
            panic_task: Some(0),
            ..FaultPlan::default()
        };
        // Serial: the sole member panics before pulling any work; the
        // unwind is contained and surfaces as a typed error, not an abort.
        let opts = SolverOptions::default().with_fault_plan(plan.clone());
        let err = find_imaginary_eigenvalues(&ss, &opts).unwrap_err();
        assert!(
            matches!(err, SolverError::TaskPanicked { .. }),
            "got {err:?}"
        );
        // Parallel: the surviving members finish the whole band, so the
        // panic is contained entirely and the result is complete.
        let opts = SolverOptions::default()
            .with_threads(4)
            .with_fault_plan(plan);
        let out = find_imaginary_eigenvalues(&ss, &opts).unwrap();
        let clean = find_imaginary_eigenvalues(&ss, &SolverOptions::default()).unwrap();
        assert_eq!(out.frequencies.len(), clean.frequencies.len());
        assert!(out.coverage_gaps.is_empty());
        assert_eq!(out.covered_fraction, 1.0);
        assert!(out.stats.faults_injected >= 1);
    }

    #[test]
    fn transient_nan_injection_recovers_via_degradation_ladder() {
        // A one-shot NaN corruption of an operator application must never
        // produce NaN frequencies: the poisoned attempt fails, the ladder
        // retries, and the final answer agrees with the clean run (or the
        // shift is quarantined with a named gap — never silent garbage).
        let ss = generate_case(&CaseSpec::new(24, 2).with_seed(31).with_target_crossings(4))
            .unwrap()
            .realize();
        let clean = find_imaginary_eigenvalues(&ss, &SolverOptions::default()).unwrap();
        let plan = FaultPlan {
            nan_apply: Some(3),
            ..FaultPlan::default()
        };
        let opts = SolverOptions::default().with_fault_plan(plan);
        let out = find_imaginary_eigenvalues(&ss, &opts).unwrap();
        assert!(out.frequencies.iter().all(|w| w.is_finite()));
        assert!(out.stats.faults_injected >= 1);
        if out.quarantined.is_empty() {
            assert_eq!(out.frequencies.len(), clean.frequencies.len());
            for (a, b) in out.frequencies.iter().zip(&clean.frequencies) {
                assert!((a - b).abs() < 1e-5 * clean.band.1);
            }
        } else {
            assert!(!out.coverage_gaps.is_empty());
        }
    }

    #[test]
    fn parallel_shift_log_is_deterministically_ordered() {
        let ss = generate_case(&CaseSpec::new(24, 2).with_seed(31).with_target_crossings(4))
            .unwrap()
            .realize();
        for threads in [1usize, 4] {
            let out =
                find_imaginary_eigenvalues(&ss, &SolverOptions::default().with_threads(threads))
                    .unwrap();
            let keys: Vec<(f64, f64)> = out.shift_log.iter().map(|r| (r.omega, r.radius)).collect();
            let mut sorted = keys.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            assert_eq!(keys, sorted, "T={threads}: shift_log not in sorted order");
        }
    }

    #[test]
    fn reused_workspace_gives_identical_results() {
        // The workspace is pure scratch: passing a dirty workspace from a
        // previous (different) model must not change any result.
        let ss1 = generate_case(&CaseSpec::new(20, 2).with_seed(6).with_target_crossings(2))
            .unwrap()
            .realize();
        let ss2 = generate_case(&CaseSpec::new(14, 3).with_seed(9))
            .unwrap()
            .realize();
        let opts = SolverOptions::default();
        let mut ws = SolverWorkspace::new();
        let _ = find_imaginary_eigenvalues_with(&ss2, &opts, &mut ws).unwrap();
        let dirty = find_imaginary_eigenvalues_with(&ss1, &opts, &mut ws).unwrap();
        let fresh = find_imaginary_eigenvalues(&ss1, &opts).unwrap();
        assert_eq!(dirty.frequencies, fresh.frequencies);
        assert_eq!(
            dirty.shift_log.len(),
            fresh.shift_log.len(),
            "workspace reuse changed the shift schedule"
        );
    }

    #[test]
    #[ignore = "diagnostic probe"]
    fn recycling_probe() {
        let ss = generate_case(&CaseSpec::new(96, 3).with_seed(7).with_target_crossings(4))
            .unwrap()
            .realize();
        for (recycling, block) in [(false, 1), (true, 1), (true, 4)] {
            let opts = SolverOptions::default()
                .with_recycling(recycling)
                .with_block_size(block);
            let out = find_imaginary_eigenvalues(&ss, &opts).unwrap();
            println!(
                "recycling={recycling} block={block}: matvecs={} shifts={} crossings={} \
                 warm_started={} candidates={} hits={} cancelled={}",
                out.stats.total_matvecs,
                out.shift_log.len(),
                out.frequencies.len(),
                out.stats.warm_started_shifts,
                out.stats.recycle_candidates,
                out.stats.recycle_hits,
                out.stats.scheduler.cancelled_in_flight,
            );
            for r in &out.shift_log {
                println!(
                    "  omega={:.4} radius={:.4} matvecs={} restarts={} warm={}/{}",
                    r.omega, r.radius, r.matvecs, r.restarts, r.warm_pre_locked, r.warm_candidates
                );
            }
        }
    }

    #[test]
    fn shift_log_is_consistent() {
        let ss = generate_case(&CaseSpec::new(14, 2).with_seed(5))
            .unwrap()
            .realize();
        let out = find_imaginary_eigenvalues(&ss, &SolverOptions::default()).unwrap();
        assert_eq!(out.shift_log.len(), out.stats.scheduler.processed);
        let sum: usize = out.shift_log.iter().map(|r| r.matvecs).sum();
        assert_eq!(sum, out.stats.total_matvecs);
        for r in &out.shift_log {
            assert!(r.radius > 0.0);
            assert!(r.cost_units >= r.matvecs as u64);
        }
        // Zero-fault baseline: nothing injected, nothing quarantined,
        // full coverage.
        assert_eq!(out.stats.faults_injected, 0);
        assert_eq!(out.stats.shifts_quarantined, 0);
        assert!(out.quarantined.is_empty());
        assert!(out.coverage_gaps.is_empty());
        assert_eq!(out.covered_fraction, 1.0);
    }
}
