//! Passivity enforcement by first-order perturbation of the imaginary
//! Hamiltonian eigenvalues (the method of the paper's ref. \[8\],
//! Grivet-Talocia 2004).
//!
//! For a purely imaginary simple eigenvalue `lambda = j omega` of the real
//! Hamiltonian `M` with right eigenvector `x = [x1; x2]`, the row vector
//! `(J conj(x))^T` is a left eigenvector for the same eigenvalue
//! (J-symmetry), giving the first-order displacement under a residue
//! perturbation `Delta C`:
//!
//! ```text
//! d lambda = ( x2^H (dM x)_1 - x1^H (dM x)_2 ) / ( x2^H x1 - x1^H x2 )
//! ```
//!
//! which is linear in `Delta C` (only the Hamiltonian blocks containing `C`
//! move) and automatically purely imaginary (the perturbed matrix stays
//! Hamiltonian). Each violation band contributes displacement targets that
//! drive its edge crossings toward the band midpoint; the under-determined
//! linear system is solved in the least-norm sense, and the loop
//! re-characterizes with the Hamiltonian eigensolver until `Omega` is
//! empty.
//!
//! Only `C` is perturbed: poles (stability) and `D` (asymptotic passivity)
//! are untouched.

use crate::characterization::{characterize, PassivityReport};
use crate::error::SolverError;
use crate::exec::SweepOrigin;
use crate::solver::{
    find_imaginary_eigenvalues_tagged, SolverOptions, SolverOutcome, SolverWorkspace,
};
use crate::spectrum::ImaginaryEigenpair;
use pheig_hamiltonian::build::port_coupling_inverses;
use pheig_linalg::{Lu, Matrix, C64};
use pheig_model::StateSpace;

/// Options for [`enforce_passivity`].
#[derive(Debug, Clone, PartialEq)]
pub struct EnforcementOptions {
    /// Maximum outer iterations.
    pub max_iterations: usize,
    /// Fraction of the edge-to-midpoint distance each crossing is asked to
    /// move per iteration (1 collapses bands at first order).
    pub contraction: f64,
    /// Relative Tikhonov regularization of the least-norm solve.
    pub regularization: f64,
    /// Step halvings attempted when a full step increases the violation.
    pub max_halvings: usize,
    /// Eigensolver configuration used for re-characterization.
    pub solver: SolverOptions,
    /// Emit per-iteration diagnostics on stderr.
    pub trace: bool,
}

impl EnforcementOptions {
    /// Reasonable defaults.
    ///
    /// The default contraction of 1.15 deliberately *overshoots* the band
    /// midpoint: edges pushed exactly to the midpoint (contraction = 1)
    /// leave a degenerate tangential crossing that later iterations cannot
    /// displace, while a slight overshoot annihilates the crossing pair
    /// (the removal strategy of the paper's ref. \[8\]).
    pub fn new() -> Self {
        EnforcementOptions {
            max_iterations: 60,
            contraction: 1.15,
            regularization: 1e-10,
            max_halvings: 5,
            solver: SolverOptions::default(),
            trace: false,
        }
    }
}

impl Default for EnforcementOptions {
    fn default() -> Self {
        Self::new()
    }
}

/// Result of a passivity enforcement run.
#[derive(Debug, Clone)]
pub struct EnforcementOutcome {
    /// The enforced model (same poles and `D`, perturbed `C`).
    pub state_space: StateSpace,
    /// Outer iterations performed.
    pub iterations: usize,
    /// Report of the input model.
    pub initial_report: PassivityReport,
    /// Report of the enforced model (passive on success).
    pub final_report: PassivityReport,
    /// Frobenius norm of the total applied `Delta C`.
    pub delta_c_norm: f64,
    /// Recycling telemetry aggregated over this stage's own sweeps (the
    /// seeded characterization is counted by its originating stage; failed
    /// whole-loop retries are not counted).
    pub recycle: crate::solver::RecycleCounters,
}

/// First-order displacement sensitivity of one imaginary eigenvalue with
/// respect to the entries of `C`, as a real row (the imaginary part of the
/// complex gradient; the real part vanishes by Hamiltonian symmetry).
///
/// Returns a flattened row of length `p * n` with entry `(alpha, beta)` at
/// `alpha * n + beta`.
fn sensitivity_row(
    ss: &StateSpace,
    r_inv: &Matrix<f64>,
    s_inv: &Matrix<f64>,
    pair: &ImaginaryEigenpair,
) -> Vec<f64> {
    let n = ss.order();
    let p = ss.ports();
    let (x1, x2) = pair.vector.split_at(n);
    let x1c: Vec<C64> = x1.iter().map(|z| z.conj()).collect();
    let x2c: Vec<C64> = x2.iter().map(|z| z.conj()).collect();
    let mixed = |m: &Matrix<f64>, v: &[C64]| -> Vec<C64> {
        let mut out = vec![C64::zero(); m.rows()];
        for (i, oi) in out.iter_mut().enumerate() {
            let row = m.row(i);
            let mut acc = C64::zero();
            for (a, b) in row.iter().zip(v.iter()) {
                acc += *b * *a;
            }
            *oi = acc;
        }
        out
    };
    let d = ss.d();
    // a = D R^{-1} B^T conj(x2)
    let a = mixed(d, &mixed(r_inv, &ss.apply_bt(&x2c)));
    // w = S^{-1} C x1
    let w = mixed(s_inv, &ss.apply_c(x1));
    // b = S^{-1} C conj(x1)
    let b = mixed(s_inv, &ss.apply_c(&x1c));
    // w3 = D R^{-1} B^T x2
    let w3 = mixed(d, &mixed(r_inv, &ss.apply_bt(x2)));
    // denom = x2^H x1 - x1^H x2 (purely imaginary for a genuine pair).
    let mut denom = C64::zero();
    for i in 0..n {
        denom += x2[i].conj() * x1[i] - x1[i].conj() * x2[i];
    }
    let inv_denom = denom.recip();
    // The eigenpair may have been folded from the lower half plane
    // (omega = |Im lambda| but the eigenvector belongs to -j omega); there
    // d(omega) = -d(Im lambda), so the row flips sign.
    let fold = if pair.lambda.im < 0.0 { -1.0 } else { 1.0 };
    // grad[alpha, beta] = -( (a+b)_alpha x1_beta + (w+w3)_alpha conj(x1)_beta ).
    let mut row = vec![0.0f64; p * n];
    for alpha in 0..p {
        let u = a[alpha] + b[alpha];
        let v = w[alpha] + w3[alpha];
        let base = alpha * n;
        for beta in 0..n {
            let g = -(u * x1[beta] + v * x1c[beta]) * inv_denom;
            row[base + beta] = fold * g.im;
        }
    }
    row
}

/// Progress metrics for the line search: `(severity, peak excess)`.
///
/// Acceptance is lexicographic-with-tolerance: a step is progress when the
/// severity (band width times excess) strictly drops, or when severity is
/// essentially unchanged but the summed peak excess drops. Collapsing a
/// tall band narrows it while its peak *rises* (first metric improves,
/// second worsens); flattening a shallow residual band barely moves the
/// severity but lowers the peak (second metric discriminates).
fn violation_metrics(report: &PassivityReport) -> (f64, f64) {
    let peak_excess = report
        .bands
        .iter()
        .map(|b| (b.peak_sigma - 1.0).max(0.0))
        .sum::<f64>();
    (report.total_severity(), peak_excess)
}

/// Lexicographic-with-tolerance comparison of [`violation_metrics`].
fn is_progress(trial: (f64, f64), current: (f64, f64)) -> bool {
    let sev_tol = 1e-6 * current.0.max(1e-300);
    if trial.0 < current.0 - sev_tol {
        return true;
    }
    trial.0 <= current.0 + sev_tol && trial.1 < current.1 * (1.0 - 1e-6)
}

/// First-order descent row for the *peak singular value* at `omega`:
/// `d sigma = Re( u^H DeltaC (j omega I - A)^{-1} B v )` with `(u, v)` the
/// top singular pair of `H(j omega)`. These rows complement the
/// eigenvalue-displacement rows: shallow, narrow violation bands whose edge
/// eigenvectors nearly coincide give the edge rows no usable direction,
/// while the peak row always points downhill on `sigma_max`.
///
/// Returns `(row, sigma_peak)`.
fn sigma_descent_row(ss: &StateSpace, omega: f64) -> Result<(Vec<f64>, f64), SolverError> {
    let n = ss.order();
    let p = ss.ports();
    let h = ss.transfer(C64::from_imag(omega));
    // Top right singular vector from the Gram matrix, then u = H v / sigma.
    let gram = &h.conj_transpose() * &h;
    let eig = pheig_linalg::hermitian::eigh(&gram, true)?;
    // PANIC-SAFE: `eigh(_, true)` always populates `vectors`.
    #[allow(clippy::expect_used)]
    let vectors = eig.vectors.expect("eigh was asked for vectors");
    let top = eig.values.len() - 1;
    let sigma = eig.values[top].max(0.0).sqrt();
    let v: Vec<C64> = (0..p).map(|i| vectors[(i, top)]).collect();
    let hv = h.matvec(&v);
    let inv_sigma = 1.0 / sigma.max(1e-300);
    let u: Vec<C64> = hv.iter().map(|z| z.scale(inv_sigma)).collect();
    // q = (j omega I - A)^{-1} B v = -(A - j omega I)^{-1} B v.
    let bv = ss.apply_b(&v);
    let mut q = ss.a().shift_invert_apply(C64::from_imag(omega), false, &bv);
    for z in q.iter_mut() {
        *z = -*z;
    }
    let mut row = vec![0.0f64; p * n];
    for (alpha, u_alpha) in u.iter().enumerate() {
        let ua = u_alpha.conj();
        let base = alpha * n;
        for beta in 0..n {
            row[base + beta] = (ua * q[beta]).re;
        }
    }
    Ok((row, sigma))
}

/// Builds the displacement targets, grouped per band: each finite
/// violation-band edge is asked to move toward the band midpoint.
fn displacement_targets(
    report: &PassivityReport,
    eigenpairs: &[ImaginaryEigenpair],
    contraction: f64,
    match_tol: f64,
) -> Vec<Vec<(usize, f64)>> {
    let mut groups = Vec::new();
    let push = |targets: &mut Vec<(usize, f64)>, omega: f64, delta: f64| {
        if let Some((idx, _)) = eigenpairs
            .iter()
            .enumerate()
            .map(|(i, e)| (i, (e.omega - omega).abs()))
            .min_by(|a, b| a.1.total_cmp(&b.1))
        {
            if (eigenpairs[idx].omega - omega).abs() <= match_tol {
                targets.push((idx, delta));
            }
        }
    };
    for band in &report.bands {
        let mut targets = Vec::new();
        if band.hi.is_finite() {
            let mid = 0.5 * (band.lo.max(0.0) + band.hi);
            if band.lo > 0.0 {
                push(&mut targets, band.lo, contraction * (mid - band.lo));
            }
            push(&mut targets, band.hi, contraction * (mid - band.hi));
        } else if band.lo > 0.0 {
            // Unbounded band (defensive; cannot occur for sigma(D) < 1):
            // push the lower edge upward to shrink it.
            push(&mut targets, band.lo, contraction * band.lo * 0.01);
        }
        groups.push(targets);
    }
    groups
}

/// Cosine of the angle between two rows.
fn row_cosine(a: &[f64], b: &[f64]) -> f64 {
    let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
    let nb: f64 = b.iter().map(|x| x * x).sum::<f64>().sqrt();
    dot / (na * nb).max(f64::MIN_POSITIVE)
}

/// Enforces passivity by iterative residue perturbation.
///
/// # Errors
///
/// * [`SolverError::EnforcementStalled`] when the violation cannot be
///   reduced within the iteration budget;
/// * solver errors from the inner eigenvalue sweeps.
///
/// # Example
///
/// ```no_run
/// use pheig_core::enforcement::{enforce_passivity, EnforcementOptions};
/// use pheig_model::generator::{generate_case, CaseSpec};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let ss = generate_case(&CaseSpec::new(20, 2).with_seed(1).with_target_crossings(2))?
///     .realize();
/// let out = enforce_passivity(&ss, &EnforcementOptions::default())?;
/// assert!(out.final_report.is_passive());
/// # Ok(())
/// # }
/// ```
pub fn enforce_passivity(
    ss: &StateSpace,
    opts: &EnforcementOptions,
) -> Result<EnforcementOutcome, SolverError> {
    // One workspace serves every eigenvalue sweep of the enforcement loop
    // (the initial characterization, each line-search trial, and the final
    // verification): worker scratch persists across passivity iterations.
    // With `opts.solver.threads > 1` the re-characterization sweeps are
    // cohorts on the persistent executor, so the same pool (and its pooled
    // worker scratch) also persists across iterations — no per-sweep
    // thread spawning.
    enforce_passivity_with(ss, opts, &mut SolverWorkspace::new())
}

/// [`enforce_passivity`] with caller-owned solver scratch.
///
/// Batch drivers that enforce many models on one worker (the pipeline's
/// [`crate::pipeline::run_batch`]) should create one [`SolverWorkspace`]
/// per worker and pass it to every call, extending the workspace-reuse
/// contract across models.
///
/// # Errors
///
/// Same as [`enforce_passivity`].
pub fn enforce_passivity_with(
    ss: &StateSpace,
    opts: &EnforcementOptions,
    solver_ws: &mut SolverWorkspace,
) -> Result<EnforcementOutcome, SolverError> {
    enforce_with_seed(ss, opts, solver_ws, None)
}

/// [`enforce_passivity_with`] reusing a characterization of `ss` the
/// caller already computed with the *same* solver options — the pipeline's
/// stage-2 sweep — so the enforcement loop does not repeat the most
/// expensive step of the flow before its first perturbation.
pub(crate) fn enforce_with_seed(
    ss: &StateSpace,
    opts: &EnforcementOptions,
    solver_ws: &mut SolverWorkspace,
    seed: Option<(&SolverOutcome, &PassivityReport)>,
) -> Result<EnforcementOutcome, SolverError> {
    // The first-order scheme can stall on degenerate crossing geometry
    // for a specific contraction factor; retrying the whole loop with a
    // damped or over-shot factor resolves this in practice (the factors
    // change which crossing pairs annihilate first). Every attempt starts
    // from the unperturbed `ss`, so the seeded characterization stays
    // valid across attempts.
    let mut last_err = None;
    for factor in [1.0, 0.6, 1.25, 0.4] {
        let mut attempt = opts.clone();
        attempt.contraction = opts.contraction * factor;
        match enforce_once(ss, &attempt, solver_ws, seed) {
            Ok(out) => return Ok(out),
            Err(e @ SolverError::EnforcementStalled { .. }) => last_err = Some(e),
            Err(e) => return Err(e),
        }
    }
    // PANIC-SAFE: the factor array is non-empty, so the loop either
    // returned or recorded at least one stall error.
    #[allow(clippy::expect_used)]
    Err(last_err.expect("at least one attempt ran"))
}

fn enforce_once(
    ss: &StateSpace,
    opts: &EnforcementOptions,
    solver_ws: &mut SolverWorkspace,
    seed: Option<(&SolverOutcome, &PassivityReport)>,
) -> Result<EnforcementOutcome, SolverError> {
    let n = ss.order();
    let p = ss.ports();
    let (r_inv, s_inv) = port_coupling_inverses(ss.d())?;
    let mut current = ss.clone();
    let mut recycle = crate::solver::RecycleCounters::default();
    let (mut outcome, initial_report) = match seed {
        Some((outcome, report)) => (outcome.clone(), report.clone()),
        None => {
            let outcome = find_imaginary_eigenvalues_tagged(
                &current,
                &opts.solver,
                solver_ws,
                SweepOrigin::Enforcement,
            )?;
            recycle.absorb(&outcome.stats);
            let report = characterize(&current, &outcome.frequencies)?;
            (outcome, report)
        }
    };
    let mut report = initial_report.clone();
    let c0 = ss.c().clone();
    let mut stall_count = 0usize;
    // Adaptive overshoot: bumped when a full sweep of step sizes fails to
    // reduce the violation (degenerate tangential crossings respond to a
    // harder push), reset on success.
    let mut boost = 1.0f64;

    for iteration in 0..opts.max_iterations {
        if opts.trace {
            eprintln!(
                "enforce[{iteration}]: {} crossings, {} bands, severity {:.4e}, max sigma {:.7}",
                outcome.frequencies.len(),
                report.bands.len(),
                report.total_severity(),
                report.max_sigma()
            );
            for b in &report.bands {
                eprintln!(
                    "  band [{:.8}, {:.8}] width {:.3e} peak {:.7}",
                    b.lo,
                    b.hi,
                    b.width(),
                    b.peak_sigma
                );
            }
        }
        if report.is_passive() {
            let delta = (&current.c().clone() - &c0).frobenius_norm();
            return Ok(EnforcementOutcome {
                state_space: current,
                iterations: iteration,
                initial_report,
                final_report: report,
                delta_c_norm: delta,
                recycle,
            });
        }
        let match_tol = 1e-6 * outcome.band.1.max(1.0);
        // Two complementary constraint regimes, chosen *per band*: wide
        // bands use the eigenvalue-displacement rows (overshooting the
        // midpoint annihilates the crossing pair), while narrow/shallow
        // bands — whose edge eigenvectors nearly coincide and give the
        // displacement rows no usable direction — use a direct descent on
        // the peak singular value instead.
        let narrow_tol = 1e-3 * outcome.band.1.max(1.0);
        let mut wide_bands = report.clone();
        let mut narrow_probe_points: Vec<f64> = Vec::new();
        wide_bands.bands.retain(|b| {
            let wide = b.hi.is_finite() && b.width() > narrow_tol;
            if !wide && b.peak_omega.is_finite() {
                // Constrain the whole band, not just the peak: a single
                // peak constraint merely shifts the maximum sideways.
                narrow_probe_points.push(b.peak_omega);
                if b.hi.is_finite() {
                    let probes = 7;
                    for k in 0..probes {
                        let w = b.lo + (b.hi - b.lo) * (k as f64 + 0.5) / probes as f64;
                        narrow_probe_points.push(w);
                    }
                }
            }
            wide
        });
        let target_groups = displacement_targets(
            &wide_bands,
            &outcome.eigenpairs,
            opts.contraction * boost,
            match_tol,
        );
        // Materialize edge rows per band; bands whose two edge rows are
        // nearly parallel cannot be closed by displacement (the opposing
        // targets excite the near-null space of the Gram matrix and the
        // least-norm step explodes) — close those by sigma descent instead.
        let mut targets: Vec<(Vec<f64>, f64)> = Vec::new();
        for (band, group) in wide_bands.bands.iter().zip(&target_groups) {
            let rows: Vec<(Vec<f64>, f64)> = group
                .iter()
                .map(|&(eig_idx, delta)| {
                    (
                        sensitivity_row(&current, &r_inv, &s_inv, &outcome.eigenpairs[eig_idx]),
                        delta,
                    )
                })
                .collect();
            let parallel = rows.len() == 2 && row_cosine(&rows[0].0, &rows[1].0).abs() > 0.9;
            if parallel || rows.is_empty() {
                narrow_probe_points.push(band.peak_omega);
                if band.hi.is_finite() {
                    let probes = 7;
                    for k in 0..probes {
                        let w = band.lo + (band.hi - band.lo) * (k as f64 + 0.5) / probes as f64;
                        narrow_probe_points.push(w);
                    }
                }
            } else {
                targets.extend(rows);
            }
        }
        let mut sigma_rows: Vec<(Vec<f64>, f64)> = Vec::new();
        for omega in narrow_probe_points {
            let (row, sigma) = sigma_descent_row(&current, omega)?;
            if sigma < 1.0 - 1e-9 {
                continue; // already below threshold; do not push it back up
            }
            // Push the (shallow) violation strictly below the threshold,
            // with a real margin so round-off and second-order effects
            // cannot leave the peak grazing sigma = 1.
            let delta = (1.0 - sigma) * (1.0 + 0.2 * boost) - 3e-4;
            sigma_rows.push((row, delta));
        }
        if targets.is_empty() && sigma_rows.is_empty() {
            return Err(SolverError::EnforcementStalled {
                iterations: iteration,
                residual_violation: report.total_severity(),
            });
        }
        // Assemble the m x (p n) sensitivity matrix and the target vector:
        // eigenvalue-displacement rows first, then peak-descent rows.
        let m = targets.len() + sigma_rows.len();
        let mut g = Matrix::<f64>::zeros(m, p * n);
        let mut rhs = vec![0.0f64; m];
        for (row_idx, (row, delta)) in targets.into_iter().chain(sigma_rows).enumerate() {
            for (j, v) in row.into_iter().enumerate() {
                g[(row_idx, j)] = v;
            }
            rhs[row_idx] = delta;
        }
        // Row equilibration: eigenvalue-displacement rows (rad/s per unit C)
        // and sigma rows (dimensionless per unit C) have incommensurate
        // scales; normalize each constraint so the least-norm compromise is
        // balanced.
        for i in 0..m {
            let nrm = (0..p * n)
                .map(|j| g[(i, j)] * g[(i, j)])
                .sum::<f64>()
                .sqrt();
            if nrm > 0.0 {
                let inv = 1.0 / nrm;
                for j in 0..p * n {
                    g[(i, j)] *= inv;
                }
                rhs[i] *= inv;
            }
        }
        // Least-norm solve via the small Gram system (G G^T + eps I) mu = rhs,
        // with Levenberg-Marquardt-style adaptive damping: nearly parallel
        // constraints make the Gram ill-conditioned and an undamped solve
        // returns a step hundreds of times larger than C itself — pure
        // noise amplification. Increase the damping until the step is a
        // bounded fraction of the current residue matrix.
        let gt = g.transpose();
        let gram0 = &g * &gt;
        let trace: f64 = (0..m).map(|i| gram0[(i, i)]).sum();
        let step_cap = 0.5 * current.c().frobenius_norm().max(1e-12);
        let mut eps = opts.regularization * (trace / m as f64).max(f64::MIN_POSITIVE);
        let delta_c_flat = loop {
            let mut gram = gram0.clone();
            for i in 0..m {
                gram[(i, i)] += eps;
            }
            let mu = Lu::new(gram)?.solve(&rhs)?;
            let candidate = gt.matvec(&mu);
            let norm = candidate.iter().map(|x| x * x).sum::<f64>().sqrt();
            if norm <= step_cap || eps > 1e6 * trace.max(f64::MIN_POSITIVE) {
                break candidate;
            }
            eps *= 100.0;
        };
        if opts.trace {
            let dc_norm = delta_c_flat.iter().map(|x| x * x).sum::<f64>().sqrt();
            let c_norm = current.c().frobenius_norm();
            eprintln!("  step: {m} rows, |dC| = {dc_norm:.3e} (|C| = {c_norm:.3e})");
        }

        // Line search: accept the largest step that reduces the violation.
        let severity = violation_metrics(&report);
        let mut eta = 1.0f64;
        let mut accepted = None;
        for _ in 0..=opts.max_halvings {
            let mut trial = current.clone();
            {
                let c = trial.c_mut();
                for alpha in 0..p {
                    for beta in 0..n {
                        c[(alpha, beta)] += eta * delta_c_flat[alpha * n + beta];
                    }
                }
            }
            let trial_outcome = find_imaginary_eigenvalues_tagged(
                &trial,
                &opts.solver,
                solver_ws,
                SweepOrigin::Enforcement,
            )?;
            recycle.absorb(&trial_outcome.stats);
            let trial_report = characterize(&trial, &trial_outcome.frequencies)?;
            if opts.trace {
                eprintln!(
                    "  trial eta={eta:.4}: {} crossings, metrics {:.4e}/{:.4e} (current {:.4e}/{:.4e})",
                    trial_outcome.frequencies.len(),
                    violation_metrics(&trial_report).0,
                    violation_metrics(&trial_report).1,
                    severity.0,
                    severity.1
                );
            }
            if trial_report.is_passive() || is_progress(violation_metrics(&trial_report), severity)
            {
                accepted = Some((trial, trial_outcome, trial_report));
                break;
            }
            eta *= 0.5;
        }
        match accepted {
            Some((t, o, r)) => {
                current = t;
                outcome = o;
                report = r;
                stall_count = 0;
                boost = 1.0;
            }
            None => {
                stall_count += 1;
                boost *= 1.4;
                if stall_count >= 4 {
                    return Err(SolverError::EnforcementStalled {
                        iterations: iteration + 1,
                        residual_violation: severity.0 + severity.1,
                    });
                }
            }
        }
    }
    if report.is_passive() {
        let delta = (&current.c().clone() - &c0).frobenius_norm();
        return Ok(EnforcementOutcome {
            state_space: current,
            iterations: opts.max_iterations,
            initial_report,
            final_report: report,
            delta_c_norm: delta,
            recycle,
        });
    }
    Err(SolverError::EnforcementStalled {
        iterations: opts.max_iterations,
        residual_violation: report.total_severity(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::find_imaginary_eigenvalues;
    use pheig_model::generator::{generate_case, CaseSpec};

    #[test]
    fn sensitivity_matches_finite_difference() {
        // Perturb one entry of C and compare the predicted eigenvalue
        // displacement with the actual recomputed crossing.
        let ss = generate_case(&CaseSpec::new(14, 2).with_seed(21).with_target_crossings(2))
            .unwrap()
            .realize();
        let solver = SolverOptions::default();
        let out = find_imaginary_eigenvalues(&ss, &solver).unwrap();
        assert!(!out.eigenpairs.is_empty());
        let pair = &out.eigenpairs[0];
        let (r_inv, s_inv) = port_coupling_inverses(ss.d()).unwrap();
        let row = sensitivity_row(&ss, &r_inv, &s_inv, pair);
        let n = ss.order();
        // Pick the entry with the largest sensitivity for a strong signal.
        let (idx, &grad) = row
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.abs().partial_cmp(&b.1.abs()).unwrap())
            .unwrap();
        let (alpha, beta) = (idx / n, idx % n);
        let h = 1e-6 / grad.abs().max(1.0);
        let mut perturbed = ss.clone();
        perturbed.c_mut()[(alpha, beta)] += h;
        let out2 = find_imaginary_eigenvalues(&perturbed, &solver).unwrap();
        // Find the crossing nearest the original.
        let new_omega = out2
            .frequencies
            .iter()
            .copied()
            .min_by(|a, b| {
                (a - pair.omega)
                    .abs()
                    .partial_cmp(&(b - pair.omega).abs())
                    .unwrap()
            })
            .expect("crossing persists under a tiny perturbation");
        let actual = (new_omega - pair.omega) / h;
        assert!(
            (actual - grad).abs() < 2e-2 * grad.abs().max(1e-6),
            "finite-difference {actual} vs analytic {grad}"
        );
    }

    #[test]
    fn enforcement_produces_passive_model() {
        let ss = generate_case(
            &CaseSpec::new(16, 2)
                .with_seed(5)
                .with_target_crossings(2)
                .with_damping(0.02, 0.09),
        )
        .unwrap()
        .realize();
        let out = enforce_passivity(&ss, &EnforcementOptions::default()).unwrap();
        assert!(!out.initial_report.is_passive());
        assert!(out.final_report.is_passive());
        assert!(out.delta_c_norm > 0.0);
        // Poles and D untouched.
        assert_eq!(out.state_space.d(), ss.d());
        assert_eq!(out.state_space.a_dense(), ss.a_dense());
        // Confirm passivity independently: no imaginary eigenvalues remain.
        let check =
            find_imaginary_eigenvalues(&out.state_space, &SolverOptions::default()).unwrap();
        assert!(
            check.frequencies.is_empty(),
            "residual crossings {:?}",
            check.frequencies
        );
    }

    #[test]
    fn already_passive_model_is_untouched() {
        let ss = generate_case(
            &CaseSpec::new(14, 2)
                .with_seed(8)
                .with_target_crossings(0)
                .with_damping(0.02, 0.09),
        )
        .unwrap()
        .realize();
        let out = enforce_passivity(&ss, &EnforcementOptions::default()).unwrap();
        assert_eq!(out.iterations, 0);
        assert_eq!(out.delta_c_norm, 0.0);
        assert!(out.final_report.is_passive());
    }
}
