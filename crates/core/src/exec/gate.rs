//! The executor's wakeup protocol: the sleep gate workers park on and the
//! cohort completion latch.
//!
//! Like `lockfree.rs`, this file is compiled twice — into `pheig-core`
//! against `parking_lot` / `std::sync::atomic`, and into `pheig-verify`
//! (`cfg(pheig_model)`) against the instrumented shim, where the model
//! checker proves the protocol free of lost wakeups *without* the timed
//! backstop: shim condvar waits are untimed, so a notification protocol
//! that relied on the production `PARK_INTERVAL` timeout would show up as
//! a deadlock in `crates/verify/src/harnesses.rs`.

use std::time::Duration;

#[cfg(not(pheig_model))]
use parking_lot::{Condvar, Mutex};
#[cfg(pheig_model)]
use pheig_verify::sync::atomic::{AtomicUsize, Ordering};
#[cfg(pheig_model)]
use pheig_verify::sync::{Condvar, Mutex};
#[cfg(not(pheig_model))]
use std::sync::atomic::{AtomicUsize, Ordering};

/// The check-then-park gate shared by every sleeper on one pool.
///
/// The protocol closing the lost-wakeup race: a would-be sleeper takes the
/// gate lock, re-checks its condition, and only then waits on the condvar;
/// a waker touches the lock with an **empty critical section** before
/// notifying, so it cannot slip between a sleeper's re-check and its wait.
pub struct WakeGate {
    sleep: Mutex<()>,
    wake: Condvar,
}

impl Default for WakeGate {
    fn default() -> Self {
        WakeGate::new()
    }
}

impl WakeGate {
    /// A fresh gate (usable in statics).
    pub const fn new() -> Self {
        WakeGate {
            sleep: Mutex::new(()),
            wake: Condvar::new(),
        }
    }

    /// Wakes one parked sleeper (see the struct docs for why the empty
    /// critical section is load-bearing).
    pub fn notify_one(&self) {
        drop(self.sleep.lock());
        self.wake.notify_one();
    }

    /// Wakes every parked sleeper.
    pub fn notify_all(&self) {
        drop(self.sleep.lock());
        self.wake.notify_all();
    }

    /// Parks the calling thread unless `cancel` reports (under the gate
    /// lock) that there is a reason to stay awake. The timeout is a
    /// defensive backstop, not the scheduling mechanism — the model build
    /// waits untimed, which is how the checker proves notifications alone
    /// suffice.
    pub fn park_unless(&self, cancel: impl FnOnce() -> bool, timeout: Duration) {
        let mut guard = self.sleep.lock();
        if cancel() {
            return;
        }
        let _ = self.wake.wait_for(&mut guard, timeout);
    }
}

/// Completion latch of one cohort: counts outstanding pool copies and
/// wakes the owner (through the pool's [`WakeGate`]) when the last one
/// finishes.
///
/// The liveness half of the `GroupRecord` safety contract in `exec.rs`
/// lives here: the owner's [`CohortLatch::wait`] cannot return before
/// every member's [`CohortLatch::complete_one`], so the record the
/// members borrow outlives every borrow.
pub struct CohortLatch {
    remaining: AtomicUsize,
}

impl CohortLatch {
    /// A latch awaiting `members` completions.
    pub fn new(members: usize) -> Self {
        CohortLatch {
            remaining: AtomicUsize::new(members),
        }
    }

    /// `true` once every member has completed. The acquire load pairs
    /// with the release half of the `fetch_sub` in
    /// [`CohortLatch::complete_one`], so an owner that observes zero also
    /// observes all member writes (panic payloads in particular).
    pub fn is_done(&self) -> bool {
        self.remaining.load(Ordering::Acquire) == 0
    }

    /// Records one member completion; returns `true` (after waking the
    /// gate's sleepers — the owner may be parked there) when this was the
    /// last member. The caller must not touch cohort-owned state after
    /// this call.
    pub fn complete_one(&self, gate: &WakeGate) -> bool {
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            gate.notify_all();
            return true;
        }
        false
    }

    /// Owner-side wait: blocks until every member completed, invoking
    /// `help` (which reports whether it made progress) instead of parking
    /// whenever possible, and parking on `gate` only when `help` found
    /// nothing and `more_work` (checked under the gate lock) agrees the
    /// pool looks drained.
    pub fn wait(
        &self,
        gate: &WakeGate,
        mut help: impl FnMut() -> bool,
        more_work: impl Fn() -> bool,
        park: Duration,
    ) {
        while !self.is_done() {
            if help() {
                continue;
            }
            gate.park_unless(|| self.is_done() || more_work(), park);
        }
    }
}
