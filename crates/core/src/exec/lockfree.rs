//! The executor's lock-free queue primitives: the per-worker Chase–Lev
//! deque and the bounded Vyukov MPMC injector ring.
//!
//! This file is compiled **twice**:
//!
//! * into `pheig-core` (no `pheig_model` cfg) against real
//!   `std::sync::atomic` — the production hot path, zero overhead;
//! * into `pheig-verify` (`cfg(pheig_model)`, set by that crate's
//!   `build.rs`) against the instrumented shim in `pheig_verify::sync`,
//!   where every atomic access is a scheduling point and the model
//!   checker exhaustively interleaves them (`crates/verify/src/
//!   harnesses.rs`).
//!
//! Identical code runs in both worlds; only the `use` lines below switch.
//! Queue entries are single machine words (`usize`), so neither structure
//! allocates after construction.

#[cfg(pheig_model)]
use pheig_verify::sync::atomic::{fence, AtomicI64, AtomicUsize, Ordering};
#[cfg(not(pheig_model))]
use std::sync::atomic::{fence, AtomicI64, AtomicUsize, Ordering};

/// Result of a steal attempt (Chase–Lev terminology).
pub enum Steal {
    /// Claimed the entry at the top of the victim's deque.
    Success(usize),
    /// The victim's deque was observed empty.
    Empty,
    /// Lost the top CAS to the owner or another thief; worth retrying.
    Retry,
}

/// A Chase–Lev work-stealing deque over single-word entries.
///
/// The owner pushes and pops at the bottom; thieves CAS the top — the
/// Chase–Lev 2005 discipline with the Lê et al. 2013 orderings. Entries
/// are plain words (pointers into cohort-owner stack frames), so there is
/// no reclamation problem — the cohort completion barrier guarantees
/// liveness (see `GroupRecord` in `exec.rs`).
pub struct Deque {
    top: AtomicI64,
    bottom: AtomicI64,
    slots: Box<[AtomicUsize]>,
}

impl Deque {
    /// An empty deque with `capacity` slots (must be a power of two).
    /// Overflow is reported by [`Deque::push`], not handled here — the
    /// executor spills to the injector.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(
            capacity.is_power_of_two() && capacity >= 2,
            "deque capacity must be a power of two >= 2"
        );
        Deque {
            top: AtomicI64::new(0),
            bottom: AtomicI64::new(0),
            slots: (0..capacity).map(|_| AtomicUsize::new(0)).collect(),
        }
    }

    #[inline]
    fn mask(&self) -> i64 {
        (self.slots.len() - 1) as i64
    }

    /// `true` when the deque *may* hold entries (racy, used only as a
    /// wakeup hint).
    pub fn maybe_nonempty(&self) -> bool {
        self.bottom.load(Ordering::Relaxed) > self.top.load(Ordering::Relaxed)
    }

    /// Owner-side push. Fails (returning the entry) when full; the caller
    /// spills to the injector.
    pub fn push(&self, entry: usize) -> Result<(), usize> {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Acquire);
        if b - t >= self.slots.len() as i64 {
            return Err(entry);
        }
        self.slots[(b & self.mask()) as usize].store(entry, Ordering::Relaxed);
        self.bottom.store(b + 1, Ordering::Release);
        Ok(())
    }

    /// Owner-side pop from the bottom (LIFO for the owner).
    pub fn pop(&self) -> Option<usize> {
        let b = self.bottom.load(Ordering::Relaxed) - 1;
        self.bottom.store(b, Ordering::Relaxed);
        fence(Ordering::SeqCst);
        let t = self.top.load(Ordering::Relaxed);
        if t <= b {
            let entry = self.slots[(b & self.mask()) as usize].load(Ordering::Relaxed);
            if t == b {
                // Last element: race the thieves for it.
                let won = self
                    .top
                    .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                    .is_ok();
                self.bottom.store(b + 1, Ordering::Relaxed);
                if won {
                    Some(entry)
                } else {
                    None
                }
            } else {
                Some(entry)
            }
        } else {
            self.bottom.store(b + 1, Ordering::Relaxed);
            None
        }
    }

    /// Thief-side steal from the top (FIFO for thieves).
    pub fn steal(&self) -> Steal {
        let t = self.top.load(Ordering::Acquire);
        fence(Ordering::SeqCst);
        let b = self.bottom.load(Ordering::Acquire);
        if t < b {
            let entry = self.slots[(t & self.mask()) as usize].load(Ordering::Relaxed);
            if self
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok()
            {
                Steal::Success(entry)
            } else {
                Steal::Retry
            }
        } else {
            Steal::Empty
        }
    }
}

/// One slot of the [`Injector`] ring: a sequence number gating access to
/// the value word (Vyukov's bounded MPMC protocol).
struct Slot {
    sequence: AtomicUsize,
    value: AtomicUsize,
}

/// A bounded lock-free MPMC queue (Vyukov's sequence-numbered ring) for
/// external task submission.
///
/// Replaces the earlier `Mutex<VecDeque>` injector: producers and
/// consumers now synchronize per-slot through one CAS on their position
/// counter plus an acquire/release handshake on the slot's sequence
/// number — no lock, no allocation, and genuinely bounded (a full ring
/// reports [`Err`] instead of growing, and a full ring implies queued
/// work exists for the submitter to help drain).
///
/// Protocol: slot `i` starts with `sequence == i`. A producer claiming
/// position `p` waits for `sequence == p` (slot free), writes the value,
/// then publishes `sequence = p + 1`. A consumer claiming position `p`
/// waits for `sequence == p + 1` (value present), reads it, then recycles
/// the slot with `sequence = p + capacity` for the producer one lap
/// ahead.
pub struct Injector {
    slots: Box<[Slot]>,
    mask: usize,
    /// Producer position counter (total pushes started).
    tail: AtomicUsize,
    /// Consumer position counter (total pops started).
    head: AtomicUsize,
}

impl Injector {
    /// An empty ring with `capacity` slots (must be a power of two).
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(
            capacity.is_power_of_two() && capacity >= 2,
            "injector capacity must be a power of two >= 2"
        );
        Injector {
            slots: (0..capacity)
                .map(|i| Slot {
                    sequence: AtomicUsize::new(i),
                    value: AtomicUsize::new(0),
                })
                .collect(),
            mask: capacity - 1,
            tail: AtomicUsize::new(0),
            head: AtomicUsize::new(0),
        }
    }

    /// `true` when the ring *may* hold entries (racy, used only as a
    /// wakeup hint).
    pub fn maybe_nonempty(&self) -> bool {
        self.tail.load(Ordering::Relaxed) != self.head.load(Ordering::Relaxed)
    }

    /// Enqueues an entry; `Err(entry)` when the ring is full.
    pub fn push(&self, entry: usize) -> Result<(), usize> {
        let mut pos = self.tail.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.sequence.load(Ordering::Acquire);
            let dif = seq as isize - pos as isize;
            if dif == 0 {
                match self.tail.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        slot.value.store(entry, Ordering::Relaxed);
                        slot.sequence.store(pos.wrapping_add(1), Ordering::Release);
                        return Ok(());
                    }
                    Err(current) => pos = current,
                }
            } else if dif < 0 {
                // The slot still carries the value from one lap behind:
                // the ring is full.
                return Err(entry);
            } else {
                // Another producer claimed this position; reload.
                pos = self.tail.load(Ordering::Relaxed);
            }
        }
    }

    /// Dequeues the oldest entry, if any.
    pub fn pop(&self) -> Option<usize> {
        let mut pos = self.head.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.sequence.load(Ordering::Acquire);
            let dif = seq as isize - pos.wrapping_add(1) as isize;
            if dif == 0 {
                match self.head.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        let entry = slot.value.load(Ordering::Relaxed);
                        // Recycle for the producer one lap ahead.
                        slot.sequence
                            .store(pos.wrapping_add(self.mask + 1), Ordering::Release);
                        return Some(entry);
                    }
                    Err(current) => pos = current,
                }
            } else if dif < 0 {
                // No published value at our position: empty.
                return None;
            } else {
                // Another consumer claimed this position; reload.
                pos = self.head.load(Ordering::Relaxed);
            }
        }
    }
}
