//! The dynamic multi-shift scheduling state machine (paper Sec. IV).
//!
//! The search band `[omega_min, omega_max]` is split into `N = kappa T`
//! adjacent intervals, each holding one *tentative* shift (interval 1 at the
//! left edge, interval N at the right edge, midpoints elsewhere — paper
//! Sec. IV.A). Idle workers pick tentative shifts — the two band edges
//! first, then left to right (Fig. 3) — and run single-shift iterations.
//! On completion the certified disk is subtracted from an explicit
//! **uncovered set**; tentative shifts whose interval became fully covered
//! are deleted (Eq. (24), the source of the paper's superlinear speedups),
//! partially covered intervals are re-seeded, and the processed interval's
//! uncovered remainder spawns the paper's child intervals (Eqs. (25)–(28)).
//!
//! The uncovered set makes the paper's termination condition
//! (`tentative empty` and `nothing in flight`) *imply* band coverage — see
//! DESIGN.md ("Scheduler refinement") for why this departs from a literal
//! reading of Eq. (24).
//!
//! This type is pure state (no threads, no numerics): the serial driver,
//! the thread-parallel driver, and the virtual-time simulator all share it,
//! which is what makes the simulated Table I / Fig. 6 reproductions
//! faithful to the real implementation.

use std::collections::HashMap;

/// A shift handed to a worker.
#[derive(Debug, Clone, PartialEq)]
pub struct ShiftTask {
    /// Unique task id.
    pub id: usize,
    /// Shift frequency `omega` (the shift is `theta = j omega`).
    pub omega: f64,
    /// Initial disk radius guess `rho_0` (paper Eq. (23)).
    pub rho0: f64,
    /// The tentative interval this shift owns.
    pub interval: (f64, f64),
}

/// Scheduling statistics (the paper's superlinear-speedup telemetry).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedulerStats {
    /// Single-shift iterations completed.
    pub processed: usize,
    /// Tentative shifts deleted because another disk covered their whole
    /// interval before they were processed (Eq. (24)).
    pub deleted_tentative: usize,
    /// Tentative shifts re-seeded because their interval was partially
    /// covered by another disk.
    pub trimmed_tentative: usize,
    /// Child intervals spawned from uncovered remainders (Eqs. (25)–(28)).
    pub splits: usize,
    /// In-flight shifts abandoned because their interval became fully
    /// covered by sibling disks while they were still running (Eq. (24)
    /// applied to in-flight work, not just queued tentatives).
    pub cancelled_in_flight: usize,
    /// Shifts the degradation ladder gave up on: their interval's
    /// uncovered remainder was recorded as a named coverage gap instead of
    /// being re-seeded (see [`Scheduler::quarantine`]).
    pub quarantined: usize,
}

#[derive(Debug, Clone)]
struct Tentative {
    omega: f64,
    interval: (f64, f64),
}

/// The scheduler state machine. See the module docs.
#[derive(Debug, Clone)]
pub struct Scheduler {
    band: (f64, f64),
    alpha: f64,
    min_piece: f64,
    uncovered: Vec<(f64, f64)>,
    tentative: Vec<Tentative>,
    in_flight: HashMap<usize, (f64, f64)>,
    picks: usize,
    next_id: usize,
    dropped_length: f64,
    delete_covered: bool,
    /// Disjoint intervals given up on by [`Scheduler::quarantine`]: out of
    /// the uncovered set (so the sweep terminates) but *named*, never
    /// silently claimed covered. Later certified disks that land on a gap
    /// shrink it — only genuinely unexplored frequencies stay reported.
    gaps: Vec<(f64, f64)>,
    stats: SchedulerStats,
}

/// Subtracts `cut` from a sorted, disjoint interval list in place.
fn subtract(intervals: &mut Vec<(f64, f64)>, cut: (f64, f64)) {
    if cut.1 <= cut.0 {
        return;
    }
    let mut out = Vec::with_capacity(intervals.len() + 1);
    for &(lo, hi) in intervals.iter() {
        if cut.1 <= lo || cut.0 >= hi {
            out.push((lo, hi));
            continue;
        }
        if cut.0 > lo {
            out.push((lo, cut.0));
        }
        if cut.1 < hi {
            out.push((cut.1, hi));
        }
    }
    *intervals = out;
}

/// Intersection of one interval with a sorted, disjoint list.
fn intersect(piece: (f64, f64), intervals: &[(f64, f64)]) -> Vec<(f64, f64)> {
    let mut out = Vec::new();
    for &(lo, hi) in intervals {
        let a = lo.max(piece.0);
        let b = hi.min(piece.1);
        if b > a {
            out.push((a, b));
        }
    }
    out
}

impl Scheduler {
    /// Creates the scheduler for a band with `n_intervals >= 2` initial
    /// intervals and overlap factor `alpha >= 1` (paper Eq. (23)).
    ///
    /// # Panics
    ///
    /// Panics if the band is empty or `n_intervals < 2`.
    pub fn new(band: (f64, f64), n_intervals: usize, alpha: f64) -> Self {
        assert!(band.1 > band.0, "empty search band");
        assert!(n_intervals >= 2, "need at least two initial intervals");
        let len = band.1 - band.0;
        let mut tentative = Vec::with_capacity(n_intervals);
        for k in 0..n_intervals {
            let lo = band.0 + len * k as f64 / n_intervals as f64;
            let hi = band.0 + len * (k + 1) as f64 / n_intervals as f64;
            let omega = if k == 0 {
                lo
            } else if k == n_intervals - 1 {
                hi
            } else {
                0.5 * (lo + hi)
            };
            tentative.push(Tentative {
                omega,
                interval: (lo, hi),
            });
        }
        Scheduler {
            band,
            alpha: alpha.max(1.0),
            min_piece: len * 1e-9,
            uncovered: vec![band],
            tentative,
            in_flight: HashMap::new(),
            picks: 0,
            next_id: 0,
            dropped_length: 0.0,
            delete_covered: true,
            gaps: Vec::new(),
            stats: SchedulerStats::default(),
        }
    }

    /// Disables the dynamic deletion of covered tentative shifts
    /// (Eq. (24)). This reproduces the *static pre-distributed grid*
    /// strawman the paper dismisses in Sec. IV ("the work performed on some
    /// preallocated shifts will be useless") and is used by the ablation
    /// benchmark.
    pub fn set_delete_covered(&mut self, delete_covered: bool) {
        self.delete_covered = delete_covered;
    }

    /// The search band.
    pub fn band(&self) -> (f64, f64) {
        self.band
    }

    /// Scheduling statistics so far.
    pub fn stats(&self) -> SchedulerStats {
        self.stats
    }

    /// Total length of sub-resolution pieces that were dropped rather than
    /// re-seeded (bounded by `~1e-9` of the band per completion; the
    /// paper's `alpha > 1` overlap plays the same role).
    pub fn dropped_length(&self) -> f64 {
        self.dropped_length
    }

    /// Total uncovered length remaining (0 at termination up to drops).
    pub fn uncovered_length(&self) -> f64 {
        self.uncovered.iter().map(|(lo, hi)| hi - lo).sum()
    }

    /// Number of tentative shifts waiting.
    pub fn tentative_count(&self) -> usize {
        self.tentative.len()
    }

    /// Number of shifts being processed.
    pub fn in_flight_count(&self) -> usize {
        self.in_flight.len()
    }

    /// `true` when no tentative shifts remain and nothing is in flight
    /// (the paper's Sec. IV.E condition, which with the uncovered-set
    /// bookkeeping implies the band is covered).
    pub fn is_done(&self) -> bool {
        self.tentative.is_empty() && self.in_flight.is_empty()
    }

    /// Picks the next shift for an idle worker, or `None` if none is
    /// available right now (the worker should wait or terminate depending
    /// on [`Scheduler::is_done`]).
    ///
    /// Selection order matches the paper's startup (Fig. 3): the left band
    /// edge first, then the right edge, then left-to-right.
    pub fn next_shift(&mut self) -> Option<ShiftTask> {
        if self.tentative.is_empty() {
            return None;
        }
        let idx = if self.picks == 1 {
            // Second pick: right-most (the upper band edge).
            self.tentative
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.omega.total_cmp(&b.1.omega))
                .map(|(i, _)| i)?
        } else {
            self.tentative
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.omega.total_cmp(&b.1.omega))
                .map(|(i, _)| i)?
        };
        let t = self.tentative.swap_remove(idx);
        let id = self.next_id;
        self.next_id += 1;
        self.picks += 1;
        let reach = (t.omega - t.interval.0).max(t.interval.1 - t.omega);
        let rho0 = (self.alpha * reach).max(self.min_piece);
        self.in_flight.insert(id, t.interval);
        Some(ShiftTask {
            id,
            omega: t.omega,
            rho0,
            interval: t.interval,
        })
    }

    /// Records the completion of `task` with a certified disk of radius
    /// `radius > 0` centered at `center` (normally `task.omega`; the worker
    /// may have nudged the shift to escape an eigenvalue collision or a
    /// symmetry degeneracy), updating the uncovered set and the tentative
    /// queue.
    ///
    /// # Panics
    ///
    /// Panics if the task id is unknown (double completion) or the radius
    /// is not positive.
    pub fn complete(&mut self, task: &ShiftTask, center: f64, radius: f64) {
        assert!(radius > 0.0, "certified radius must be positive");
        // PANIC-SAFE: a missing id is a double-completion bug in the
        // driver; the documented panic (see `# Panics`) is the guard.
        #[allow(clippy::expect_used)]
        let interval = self
            .in_flight
            .remove(&task.id)
            .expect("completion of unknown or already-completed task");
        self.stats.processed += 1;
        subtract(&mut self.uncovered, (center - radius, center + radius));
        // A certified disk landing on a quarantined gap shrinks the gap:
        // those frequencies *were* explored after all.
        subtract(&mut self.gaps, (center - radius, center + radius));

        // Re-seed tentative shifts whose interval lost coverage (skipped in
        // static-grid ablation mode, where pre-allocated shifts are always
        // processed even when their interval is already covered).
        let old = if self.delete_covered {
            std::mem::take(&mut self.tentative)
        } else {
            Vec::new()
        };
        for t in old {
            let pieces = intersect(t.interval, &self.uncovered);
            let total: f64 = pieces.iter().map(|(a, b)| b - a).sum();
            let orig = t.interval.1 - t.interval.0;
            if pieces.len() == 1 && (total - orig).abs() <= 1e-12 * orig.max(1.0) {
                // Untouched.
                self.tentative.push(t);
                continue;
            }
            if total <= self.min_piece {
                // Fully covered by the new disk: the paper's Eq. (24). Any
                // sub-resolution residue is accepted by fiat and removed
                // from the uncovered set (tracked in `dropped_length`).
                self.stats.deleted_tentative += 1;
                for &piece in &pieces {
                    self.dropped_length += piece.1 - piece.0;
                    subtract(&mut self.uncovered, piece);
                }
                continue;
            }
            self.stats.trimmed_tentative += 1;
            self.seed_pieces(&pieces);
        }

        // The processed interval's own uncovered remainder spawns children
        // (paper Eqs. (25)–(28); empty when the disk covered the interval).
        let remainder = intersect(interval, &self.uncovered);
        if !remainder.is_empty() {
            self.stats.splits += 1;
            self.seed_pieces(&remainder);
        }
    }

    /// Creates a tentative mid-point shift for every sufficiently long
    /// piece; sub-resolution pieces are accepted by fiat (removed from the
    /// uncovered set and tracked in `dropped_length`).
    fn seed_pieces(&mut self, pieces: &[(f64, f64)]) {
        for &(lo, hi) in pieces {
            if hi - lo < self.min_piece {
                self.dropped_length += hi - lo;
                subtract(&mut self.uncovered, (lo, hi));
                continue;
            }
            self.tentative.push(Tentative {
                omega: 0.5 * (lo + hi),
                interval: (lo, hi),
            });
        }
    }

    /// `true` when an in-flight shift's interval has since been fully
    /// covered by sibling completions: its certified disk can no longer
    /// contribute coverage, so the worker should abandon it. This is the
    /// paper's Eq. (24) deletion rule extended to in-flight work — under
    /// parallel completion orderings a worker often starts a shift moments
    /// before a neighbor's larger-than-guessed disk lands on top of it.
    ///
    /// Deterministic in the scheduler state (pure function of the
    /// uncovered set), so workers may poll it at any cadence.
    /// `true` while `id` names a shift currently in flight. The block
    /// driver's panic-recovery path uses this to retry only lanes that
    /// never reached `complete`/`cancel` before the unwind.
    pub fn is_in_flight(&self, id: usize) -> bool {
        self.in_flight.contains_key(&id)
    }

    pub fn should_cancel(&self, id: usize) -> bool {
        let Some(&interval) = self.in_flight.get(&id) else {
            return false;
        };
        let pieces = intersect(interval, &self.uncovered);
        pieces.iter().map(|(a, b)| b - a).sum::<f64>() <= self.min_piece
    }

    /// Abandons an in-flight shift (normally after [`Self::should_cancel`]
    /// turned `true`). Any sub-resolution uncovered residue of its interval
    /// is accepted by fiat exactly like a deleted tentative's; a larger
    /// remainder (cancellation on other grounds) is re-seeded, so the
    /// coverage invariant survives either way.
    ///
    /// # Panics
    ///
    /// Panics if the task id is unknown (double completion/cancellation).
    pub fn cancel(&mut self, task: &ShiftTask) {
        // PANIC-SAFE: a missing id is a double-cancellation bug in the
        // driver; the documented panic (see `# Panics`) is the guard.
        #[allow(clippy::expect_used)]
        let interval = self
            .in_flight
            .remove(&task.id)
            .expect("cancellation of unknown or already-completed task");
        self.stats.cancelled_in_flight += 1;
        let pieces = intersect(interval, &self.uncovered);
        let total: f64 = pieces.iter().map(|(a, b)| b - a).sum();
        if total <= self.min_piece {
            for &piece in &pieces {
                self.dropped_length += piece.1 - piece.0;
                subtract(&mut self.uncovered, piece);
            }
        } else {
            self.seed_pieces(&pieces);
        }
    }

    /// Gives up on an in-flight shift the degradation ladder could not
    /// rescue: its interval's uncovered remainder is removed from the
    /// uncovered set (so the sweep can terminate) and recorded as a
    /// *named* coverage gap — honest partial coverage, never a silent
    /// claim. Unlike [`Scheduler::cancel`], nothing is re-seeded: the
    /// whole point is to stop retrying a breaking-down frequency.
    ///
    /// # Panics
    ///
    /// Panics if the task id is unknown (double completion/quarantine).
    pub fn quarantine(&mut self, task: &ShiftTask) {
        // PANIC-SAFE: a missing id is a double-quarantine bug in the
        // driver; the documented panic (see `# Panics`) is the guard.
        #[allow(clippy::expect_used)]
        let interval = self
            .in_flight
            .remove(&task.id)
            .expect("quarantine of unknown or already-completed task");
        self.stats.quarantined += 1;
        let pieces = intersect(interval, &self.uncovered);
        for &piece in &pieces {
            self.gaps.push(piece);
            subtract(&mut self.uncovered, piece);
        }
    }

    /// The named coverage gaps left by quarantined shifts, sorted and
    /// merged, net of any later certified disks. Empty on a fully covered
    /// sweep.
    pub fn coverage_gaps(&self) -> Vec<(f64, f64)> {
        let mut gaps: Vec<(f64, f64)> = self
            .gaps
            .iter()
            .copied()
            .filter(|(lo, hi)| hi - lo > 0.0)
            .collect();
        gaps.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut merged: Vec<(f64, f64)> = Vec::with_capacity(gaps.len());
        for (lo, hi) in gaps {
            match merged.last_mut() {
                Some(last) if lo <= last.1 + self.min_piece => last.1 = last.1.max(hi),
                _ => merged.push((lo, hi)),
            }
        }
        merged
    }

    /// Debug/verification helper: `true` when every uncovered point lies in
    /// a tentative or in-flight interval (the coverage invariant).
    pub fn coverage_invariant_holds(&self) -> bool {
        let mut owned: Vec<(f64, f64)> = self
            .tentative
            .iter()
            .map(|t| t.interval)
            .chain(self.in_flight.values().copied())
            .collect();
        owned.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut remaining = self.uncovered.clone();
        for iv in owned {
            subtract(&mut remaining, iv);
        }
        remaining.iter().map(|(a, b)| b - a).sum::<f64>() <= self.min_piece * 16.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn total_len(v: &[(f64, f64)]) -> f64 {
        v.iter().map(|(a, b)| b - a).sum()
    }

    #[test]
    fn subtract_cases() {
        let mut v = vec![(0.0, 10.0)];
        subtract(&mut v, (2.0, 3.0));
        assert_eq!(v, vec![(0.0, 2.0), (3.0, 10.0)]);
        subtract(&mut v, (-1.0, 0.5));
        assert_eq!(v, vec![(0.5, 2.0), (3.0, 10.0)]);
        subtract(&mut v, (1.5, 4.0));
        assert_eq!(v, vec![(0.5, 1.5), (4.0, 10.0)]);
        subtract(&mut v, (0.0, 20.0));
        assert!(v.is_empty());
        subtract(&mut v, (0.0, 1.0)); // no-op on empty
        assert!(v.is_empty());
    }

    #[test]
    fn intersect_cases() {
        let list = vec![(0.0, 2.0), (5.0, 8.0)];
        assert_eq!(intersect((1.0, 6.0), &list), vec![(1.0, 2.0), (5.0, 6.0)]);
        assert!(intersect((3.0, 4.0), &list).is_empty());
        assert_eq!(intersect((-1.0, 9.0), &list), list);
    }

    #[test]
    fn startup_order_matches_fig3() {
        // T = 3, N = 6 (kappa = 2): picks must be the band edges first,
        // then left-to-right (paper Fig. 3 with its Eq. (13)-(15)).
        let mut s = Scheduler::new((0.0, 6.0), 6, 1.05);
        let t1 = s.next_shift().unwrap();
        let t2 = s.next_shift().unwrap();
        let t3 = s.next_shift().unwrap();
        assert_eq!(t1.omega, 0.0); // left edge shift of interval 1
        assert_eq!(t2.omega, 6.0); // right edge shift of interval N
        assert_eq!(t3.omega, 1.5); // midpoint of interval 2
        assert_eq!(s.in_flight_count(), 3);
        assert!(s.coverage_invariant_holds());
    }

    #[test]
    fn disk_covering_interval_retires_it() {
        let mut s = Scheduler::new((0.0, 4.0), 4, 1.0);
        let t = s.next_shift().unwrap(); // omega = 0, interval (0, 1)
                                         // Disk radius 1.2 covers (0,1) fully and eats into (1,2).
        s.complete(&t, t.omega, 1.2);
        assert_eq!(s.stats().processed, 1);
        assert!((s.uncovered_length() - 2.8).abs() < 1e-12);
        assert!(s.coverage_invariant_holds());
    }

    #[test]
    fn covered_tentative_shift_is_deleted() {
        // A big disk from interval 1 swallows interval 2 entirely:
        // its tentative shift must be deleted (Eq. (24)).
        let mut s = Scheduler::new((0.0, 4.0), 4, 1.0);
        let t = s.next_shift().unwrap(); // omega = 0
        s.complete(&t, t.omega, 2.0); // covers (0,2): intervals 1 and 2
        assert_eq!(s.stats().deleted_tentative, 1);
        assert!((s.uncovered_length() - 2.0).abs() < 1e-12);
        assert!(s.coverage_invariant_holds());
    }

    #[test]
    fn small_disk_splits_interval_like_fig5() {
        // A disk strictly inside its interval leaves two child pieces with
        // mid-point shifts (paper Fig. 5 / Eqs. (25)-(28)).
        let mut s = Scheduler::new((0.0, 8.0), 2, 1.0);
        let left = s.next_shift().unwrap(); // omega = 0, interval (0, 4)
        let right = s.next_shift().unwrap(); // omega = 8, interval (4, 8)
        s.complete(&right, right.omega, 0.5); // covers (7.5, 8): remainder (4, 7.5)
        assert_eq!(s.stats().splits, 1);
        // The remainder child has a midpoint shift.
        let child = s.next_shift().unwrap();
        assert!((child.omega - 5.75).abs() < 1e-12);
        assert_eq!(child.interval, (4.0, 7.5));
        s.complete(&left, left.omega, 4.0); // covers (0,4) fully (one-sided from 0)
        s.complete(&child, child.omega, 2.0); // covers (3.75, 7.75): remainder (7.75 ... wait 7.5)
        assert!(s.is_done() || s.tentative_count() > 0);
        assert!(s.coverage_invariant_holds());
    }

    #[test]
    fn mid_interval_disk_spawns_two_children() {
        let mut s = Scheduler::new((0.0, 2.0), 2, 1.0);
        let a = s.next_shift().unwrap(); // omega = 0, (0,1)
        let b = s.next_shift().unwrap(); // omega = 2, (1,2)
                                         // Complete b first with a huge radius clearing its interval.
        s.complete(&b, b.omega, 1.0);
        // Now a small disk in the middle of (0,1): radius such that
        // [omega - r, omega + r] = [-0.2, 0.2] -> remainder (0.2, 1).
        s.complete(&a, a.omega, 0.2);
        assert_eq!(s.tentative_count(), 1);
        let child = s.next_shift().unwrap();
        assert!((child.omega - 0.6).abs() < 1e-12);
        s.complete(&child, child.omega, 0.45); // covers (0.15, 1.05): done
        assert!(s.is_done());
        assert!(s.uncovered_length() < 1e-9);
    }

    #[test]
    fn termination_implies_coverage() {
        // Drive to completion with deterministic pseudo-random radii; at
        // the end the uncovered set must be (numerically) empty.
        let mut s = Scheduler::new((0.0, 10.0), 8, 1.05);
        let mut pending: Vec<ShiftTask> = Vec::new();
        let mut state = 0x12345u64;
        let mut steps = 0;
        loop {
            while pending.len() < 3 {
                match s.next_shift() {
                    Some(t) => pending.push(t),
                    None => break,
                }
            }
            if pending.is_empty() {
                break;
            }
            // Pseudo-random completion order and radii.
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let pick = (state >> 33) as usize % pending.len();
            let t = pending.swap_remove(pick);
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let frac = ((state >> 40) as f64) / ((1u64 << 24) as f64);
            let radius = t.rho0 * (0.3 + 0.9 * frac);
            s.complete(&t, t.omega, radius);
            assert!(
                s.coverage_invariant_holds(),
                "invariant broken at step {steps}"
            );
            steps += 1;
            assert!(steps < 10_000, "scheduler failed to make progress");
        }
        assert!(s.is_done());
        assert!(s.uncovered_length() <= s.dropped_length() + 1e-9);
        assert!(s.stats().processed == steps);
    }

    #[test]
    fn rho0_reaches_interval_edges() {
        let mut s = Scheduler::new((0.0, 4.0), 4, 1.5);
        let t = s.next_shift().unwrap(); // edge shift at 0, interval (0,1)
                                         // Reach = 1 (distance to the far edge), times alpha.
        assert!((t.rho0 - 1.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "radius must be positive")]
    fn zero_radius_rejected() {
        let mut s = Scheduler::new((0.0, 1.0), 2, 1.0);
        let t = s.next_shift().unwrap();
        s.complete(&t, t.omega, 0.0);
    }

    #[test]
    #[should_panic(expected = "unknown or already-completed")]
    fn double_completion_rejected() {
        let mut s = Scheduler::new((0.0, 1.0), 2, 1.0);
        let t = s.next_shift().unwrap();
        s.complete(&t, t.omega, 0.6);
        s.complete(&t, t.omega, 0.6);
    }

    #[test]
    fn covered_in_flight_shift_is_cancelled() {
        // Intervals over (0,4): (0,1),(1,2),(2,3),(3,4).
        let mut s = Scheduler::new((0.0, 4.0), 4, 1.0);
        let a = s.next_shift().unwrap(); // omega 0, interval (0,1)
        let b = s.next_shift().unwrap(); // omega 4, interval (3,4)
        let c = s.next_shift().unwrap(); // omega 1.5, interval (1,2)
        assert!(!s.should_cancel(c.id));
        // a's disk covers (0, 3.5): deletes the queued tentative (2,3) and
        // makes the in-flight c redundant, while b keeps an uncovered tail.
        s.complete(&a, a.omega, 3.5);
        assert_eq!(s.stats().deleted_tentative, 1, "tentative (2,3) deleted");
        assert!(s.should_cancel(c.id), "in-flight (1,2) fully covered");
        assert!(!s.should_cancel(b.id), "(3.5,4) still uncovered");
        s.cancel(&c);
        assert_eq!(s.stats().cancelled_in_flight, 1);
        assert!(s.coverage_invariant_holds());
        assert!(!s.should_cancel(c.id), "cancelled id no longer known");
        s.complete(&b, b.omega, 1.0);
        assert!(s.is_done());
        assert!(s.uncovered_length() <= s.dropped_length() + 1e-9);
    }

    #[test]
    fn termination_with_cancellations_preserves_coverage() {
        // Property test: under a pseudo-random parallel completion order
        // with oversized disks, every in-flight shift that becomes covered
        // is cancelled, and the run still terminates with a covered band.
        let mut s = Scheduler::new((0.0, 10.0), 8, 1.05);
        let mut pending: Vec<ShiftTask> = Vec::new();
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut steps = 0usize;
        loop {
            while pending.len() < 4 {
                match s.next_shift() {
                    Some(t) => pending.push(t),
                    None => break,
                }
            }
            if pending.is_empty() {
                break;
            }
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let pick = (state >> 33) as usize % pending.len();
            let t = pending.swap_remove(pick);
            if s.should_cancel(t.id) {
                s.cancel(&t);
            } else {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let frac = ((state >> 40) as f64) / ((1u64 << 24) as f64);
                // Oversized disks (up to 1.7 rho0) spill into neighbors and
                // strand in-flight siblings.
                s.complete(&t, t.omega, t.rho0 * (0.4 + 1.3 * frac));
            }
            assert!(
                s.coverage_invariant_holds(),
                "invariant broken at step {steps}"
            );
            steps += 1;
            assert!(steps < 10_000, "scheduler failed to make progress");
        }
        assert!(s.is_done());
        assert!(s.uncovered_length() <= s.dropped_length() + 1e-9);
        let st = s.stats();
        assert!(
            st.cancelled_in_flight > 0,
            "oversized disks should strand at least one in-flight shift: {st:?}"
        );
        assert_eq!(st.processed + st.cancelled_in_flight, steps);
    }

    #[test]
    fn quarantine_names_the_gap_and_lets_the_sweep_terminate() {
        let mut s = Scheduler::new((0.0, 4.0), 4, 1.0);
        let a = s.next_shift().unwrap(); // omega 0, interval (0,1)
        let b = s.next_shift().unwrap(); // omega 4, interval (3,4)
        s.quarantine(&b);
        assert_eq!(s.stats().quarantined, 1);
        assert_eq!(s.coverage_gaps(), vec![(3.0, 4.0)]);
        // The gap left the uncovered set (else the sweep could never end)…
        assert!((s.uncovered_length() - 3.0).abs() < 1e-12);
        // …and the rest of the sweep proceeds normally.
        s.complete(&a, a.omega, 1.0);
        while let Some(t) = s.next_shift() {
            s.complete(&t, t.omega, t.rho0);
        }
        assert!(s.is_done());
        assert_eq!(s.coverage_gaps(), vec![(3.0, 4.0)], "gap stays named");
    }

    #[test]
    fn later_disks_shrink_reported_gaps() {
        let mut s = Scheduler::new((0.0, 4.0), 4, 1.0);
        let a = s.next_shift().unwrap(); // omega 0, interval (0,1)
        let b = s.next_shift().unwrap(); // omega 4, interval (3,4)
        s.quarantine(&b);
        assert_eq!(s.coverage_gaps(), vec![(3.0, 4.0)]);
        // A huge disk from the other side covers most of the gap too.
        s.complete(&a, a.omega, 3.5);
        assert_eq!(s.coverage_gaps(), vec![(3.5, 4.0)]);
    }

    #[test]
    fn adjacent_quarantine_gaps_merge() {
        let mut s = Scheduler::new((0.0, 4.0), 4, 1.0);
        let _a = s.next_shift().unwrap(); // (0,1)
        let b = s.next_shift().unwrap(); // (3,4)
        let c = s.next_shift().unwrap(); // (1,2)
        let d = s.next_shift().unwrap(); // (2,3)
        s.quarantine(&d);
        s.quarantine(&b);
        s.quarantine(&c);
        assert_eq!(s.stats().quarantined, 3);
        assert_eq!(s.coverage_gaps(), vec![(1.0, 4.0)]);
    }

    #[test]
    #[should_panic(expected = "unknown or already-completed")]
    fn double_quarantine_rejected() {
        let mut s = Scheduler::new((0.0, 1.0), 2, 1.0);
        let t = s.next_shift().unwrap();
        s.quarantine(&t);
        s.quarantine(&t);
    }

    #[test]
    fn sequential_serial_run_terminates() {
        // T = 1 style: always exactly one shift in flight.
        let mut s = Scheduler::new((0.0, 5.0), 4, 1.05);
        let mut count = 0;
        while let Some(t) = s.next_shift() {
            s.complete(&t, t.omega, t.rho0 * 0.8);
            count += 1;
            assert!(count < 1000);
        }
        assert!(s.is_done());
        assert!(s.uncovered_length() <= s.dropped_length() + 1e-9);
        assert!(total_len(&s.uncovered) < 1e-6);
    }
}
