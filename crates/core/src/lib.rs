//! The paper's contribution: parallel multi-shift Hamiltonian eigensolvers
//! for passivity characterization and enforcement.
//!
//! Pipeline:
//!
//! 1. [`band`] sizes the search interval `[omega_min, omega_max]` from the
//!    largest Hamiltonian eigenvalue magnitude (Sec. IV.A);
//! 2. [`scheduler`] is the dynamic shift-scheduling state machine
//!    (Sec. IV.A–E) built on an explicit *uncovered-set* so band coverage is
//!    provable;
//! 3. [`solver`] drives the scheduler with 1 thread (the paper's serial
//!    baseline) or `T` worker threads (the parallel solver), each running
//!    single-shift Arnoldi iterations from `pheig-arnoldi`;
//! 4. [`simulate`] replays the identical scheduling state machine under a
//!    deterministic virtual clock with `T` virtual workers — this is how
//!    Table I speedups and Fig. 6 are reproduced on hosts with fewer than
//!    16 physical cores (see DESIGN.md, substitution table);
//! 5. [`characterization`] converts the located imaginary eigenvalues
//!    `Omega` into singular-value violation bands;
//! 6. [`enforcement`] perturbs residues (first-order displacement of the
//!    imaginary Hamiltonian eigenvalues, ref. \[8\]) until the model is
//!    passive;
//! 7. [`pipeline`] chains the whole tool flow — Touchstone deck in,
//!    vector-fitted and passivity-enforced macromodel out — with per-stage
//!    diagnostics and a batched multi-model driver;
//! 8. [`exec`] is the execution layer under 3–7: one persistent
//!    work-stealing pool (workers spawned once, Chase–Lev deques,
//!    pooled solver scratch) that batch jobs, sweep shifts, and
//!    enforcement re-sweeps all schedule on, instead of nesting scoped
//!    thread pools per call.

// Unsafe code in this crate must discharge obligations explicitly:
// every unsafe operation inside an `unsafe fn` needs its own block (and
// `// SAFETY:` comment — enforced by `pheig-verify`'s audit binary).
#![deny(unsafe_op_in_unsafe_fn)]
// Library code must not panic on fallible paths: every `unwrap`/`expect`
// either becomes a typed error or moves behind a `// PANIC-SAFE:`
// invariant argument with an explicit `#[allow]`. Tests are exempt.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod band;
pub mod characterization;
pub mod enforcement;
pub mod error;
pub mod exec;
pub mod fault;
pub mod pipeline;
pub mod scheduler;
pub mod simulate;
pub mod solver;
pub mod spectrum;

pub use error::SolverError;
pub use exec::Executor;
pub use fault::{ActiveFaults, FaultPlan};
pub use pheig_arnoldi::CancelToken;
pub use pipeline::{run_batch, PassiveModel, Pipeline, PipelineOptions, PipelineReport};
pub use solver::{
    find_imaginary_eigenvalues, find_imaginary_eigenvalues_with, QuarantinedShift, SolverOptions,
    SolverOutcome, SolverWorkspace,
};
