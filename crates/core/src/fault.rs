//! Seeded fault-injection plans for chaos-testing the solver stack.
//!
//! A [`FaultPlan`] describes *which* faults to arm — NaN/Inf corruption of
//! operator applies, a near-singular shift factorization, a panicking
//! sweep task, injector-full backpressure, artificial stalls at restart
//! decision points — and *when* they fire (a deterministic occurrence
//! index per fault). Plans are inert data; arming one via
//! [`FaultPlan::activate`] compiles it into the arnoldi layer's
//! [`SweepControl`] fire-points plus a task-panic trigger that
//! [`crate::solver`] checks at each shift-task pull.
//!
//! Activation is explicit and per-sweep: a solver run with no plan carries
//! an inert [`SweepControl`] (a handful of `Option::is_some` checks on the
//! hot path — see `control`'s zero-overhead contract), and the
//! `PHEIG_FAULT_PLAN` environment hook is parsed once per process and
//! cached, so production runs pay nothing for the machinery.
//!
//! The plan grammar (used by both `PHEIG_FAULT_PLAN` and tests) is a
//! comma-separated `key=value` list:
//!
//! ```text
//! nan_apply=K       corrupt the K-th operator apply with NaN
//! inf_apply=K       corrupt the K-th operator apply with Inf
//! singular_shift=K  fail the K-th shift factorization as near-singular
//! panic_task=K      panic the K-th sweep-task membership
//! injector_full=1   drive the executor injector into full-ring backpressure
//! stall=K:MS        sleep MS milliseconds at the K-th restart decision
//! matvecs=N         arm a per-sweep matvec budget of N
//! restarts=N        arm a per-sweep restart budget of N
//! ```
//!
//! Indices `K` are zero-based occurrence counts ("fire on the (K+1)-th
//! event"). Example: `PHEIG_FAULT_PLAN=nan_apply=7,panic_task=0`.

use crate::error::SolverError;
use pheig_arnoldi::{CorruptKind, FirePoint, SweepBudget, SweepControl};
use std::sync::Arc;
use std::sync::OnceLock;
use std::time::Duration;

/// Default stall length when `stall=K` is given without `:MS`.
const DEFAULT_STALL_MS: u64 = 20;

/// A declarative, deterministic fault-injection plan.
///
/// Every field is an *occurrence index*: `Some(k)` arms the fault to fire
/// exactly once, on the `(k+1)`-th opportunity (the counting is done by
/// the armed [`FirePoint`]s, shared across a sweep's shifts). `None`
/// leaves the fault disarmed. The default plan is empty — activating it
/// yields a fully inert control plane.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Corrupt the k-th operator apply result with NaN.
    pub nan_apply: Option<u64>,
    /// Corrupt the k-th operator apply result with Inf.
    pub inf_apply: Option<u64>,
    /// Report the k-th shift-invert factorization as near-singular.
    pub singular_shift: Option<u64>,
    /// Panic the k-th sweep-task membership on the executor.
    pub panic_task: Option<u64>,
    /// Exercise injector-full backpressure before the sweep starts.
    pub injector_full: bool,
    /// Stall the k-th restart decision point for the given duration.
    pub stall: Option<(u64, Duration)>,
    /// Per-sweep matvec budget (a degradation knob, not a fault: on
    /// exhaustion the sweep stops cleanly with partial results).
    pub budget_matvecs: Option<u64>,
    /// Per-sweep restart budget (same semantics as `budget_matvecs`).
    pub budget_restarts: Option<u64>,
}

impl FaultPlan {
    /// An empty (fully disarmed) plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// A pseudo-randomly armed plan derived from `seed`: scatters one
    /// apply corruption, one singular shift, and one task panic across
    /// small occurrence indices. Deterministic per seed — the chaos
    /// matrix replays a failure by replaying its seed.
    pub fn seeded(seed: u64) -> Self {
        // SplitMix64: three decorrelated draws from one seed.
        let mut s = seed;
        let mut draw = move || {
            s = s.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let corrupt = draw();
        FaultPlan {
            nan_apply: (corrupt % 2 == 0).then_some(corrupt % 97),
            inf_apply: (corrupt % 2 == 1).then_some(corrupt % 97),
            singular_shift: Some(draw() % 5),
            panic_task: Some(draw() % 7),
            ..FaultPlan::default()
        }
    }

    /// `true` when no fault and no budget is armed (activation would be
    /// pointless).
    pub fn is_empty(&self) -> bool {
        *self == FaultPlan::default()
    }

    /// Parses the `key=value` comma list described in the module docs.
    ///
    /// # Errors
    ///
    /// [`SolverError::InvalidFaultPlan`] naming the offending clause.
    pub fn parse(spec: &str) -> Result<FaultPlan, SolverError> {
        let mut plan = FaultPlan::default();
        for clause in spec.split(',') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            let (key, value) = clause.split_once('=').ok_or_else(|| {
                SolverError::InvalidFaultPlan(format!("clause `{clause}` is not key=value"))
            })?;
            let int = |v: &str| -> Result<u64, SolverError> {
                v.parse::<u64>().map_err(|_| {
                    SolverError::InvalidFaultPlan(format!(
                        "clause `{clause}`: `{v}` is not a non-negative integer"
                    ))
                })
            };
            match key.trim() {
                "nan_apply" => plan.nan_apply = Some(int(value)?),
                "inf_apply" => plan.inf_apply = Some(int(value)?),
                "singular_shift" => plan.singular_shift = Some(int(value)?),
                "panic_task" => plan.panic_task = Some(int(value)?),
                "injector_full" => {
                    plan.injector_full = matches!(value.trim(), "1" | "true" | "yes");
                }
                "stall" => {
                    let (k, ms) = match value.split_once(':') {
                        Some((k, ms)) => (int(k)?, int(ms)?),
                        None => (int(value)?, DEFAULT_STALL_MS),
                    };
                    plan.stall = Some((k, Duration::from_millis(ms)));
                }
                "matvecs" => plan.budget_matvecs = Some(int(value)?),
                "restarts" => plan.budget_restarts = Some(int(value)?),
                other => {
                    return Err(SolverError::InvalidFaultPlan(format!(
                        "unknown fault key `{other}`"
                    )));
                }
            }
        }
        Ok(plan)
    }

    /// Arms the plan: allocates the shared fire-points and packages them
    /// as a [`SweepControl`] (corruption, singular shift, stall, budgets)
    /// plus the solver-level task-panic trigger. Each activation counts
    /// occurrences from zero — one activation per sweep.
    pub fn activate(&self) -> ActiveFaults {
        let mut control = SweepControl::none();
        match (self.nan_apply, self.inf_apply) {
            (Some(k), _) => control.corrupt_apply = Some((FirePoint::after(k), CorruptKind::Nan)),
            (None, Some(k)) => {
                control.corrupt_apply = Some((FirePoint::after(k), CorruptKind::Inf));
            }
            (None, None) => {}
        }
        if let Some(k) = self.singular_shift {
            control.singular_shift = Some(FirePoint::after(k));
        }
        if let Some((k, len)) = self.stall {
            control.stall = Some((FirePoint::after(k), len));
        }
        if self.budget_matvecs.is_some() || self.budget_restarts.is_some() {
            control.budget = Some(Arc::new(SweepBudget::new(
                self.budget_matvecs.unwrap_or(u64::MAX),
                self.budget_restarts.unwrap_or(u64::MAX),
            )));
        }
        ActiveFaults {
            control,
            panic_task: self.panic_task.map(FirePoint::after),
            injector_full: self.injector_full,
        }
    }
}

/// An armed [`FaultPlan`]: live fire-points shared by every shift of one
/// sweep. Cloning shares the counters (clones observe and advance the
/// same occurrence counts).
#[derive(Debug, Clone, Default)]
pub struct ActiveFaults {
    /// The arnoldi-layer control plane to attach to each shift's options.
    pub control: SweepControl,
    panic_task: Option<Arc<FirePoint>>,
    injector_full: bool,
}

impl ActiveFaults {
    /// Inert activation (what a run with no plan uses).
    pub fn none() -> Self {
        Self::default()
    }

    /// `true` exactly once: on the armed task-panic occurrence.
    pub fn should_panic_task(&self) -> bool {
        self.panic_task.as_ref().is_some_and(|p| p.check())
    }

    /// Whether the plan asks for an injector-backpressure exercise before
    /// the sweep.
    pub fn wants_injector_pressure(&self) -> bool {
        self.injector_full
    }

    /// Total faults that actually fired through this activation
    /// (corruption + singular shift + stall + task panic; the injector
    /// exercise is counted once when requested).
    pub fn faults_injected(&self) -> u64 {
        self.control.faults_injected() as u64
            + self
                .panic_task
                .as_ref()
                .map_or(0, |p| p.times_fired() as u64)
            + u64::from(self.injector_full)
    }
}

/// The process-wide `PHEIG_FAULT_PLAN` plan, parsed once and cached.
/// `Ok(None)` when the variable is unset or empty; a malformed value is a
/// persistent typed error (every sweep that consults the hook sees it).
pub fn plan_from_env() -> Result<Option<FaultPlan>, SolverError> {
    static CACHE: OnceLock<Result<Option<FaultPlan>, SolverError>> = OnceLock::new();
    CACHE
        .get_or_init(|| match std::env::var("PHEIG_FAULT_PLAN") {
            Ok(spec) if !spec.trim().is_empty() => FaultPlan::parse(&spec).map(Some),
            _ => Ok(None),
        })
        .clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_activates_to_an_inert_control() {
        let active = FaultPlan::new().activate();
        assert!(active.control.is_inert());
        assert!(!active.should_panic_task());
        assert!(!active.wants_injector_pressure());
        assert_eq!(active.faults_injected(), 0);
        assert!(FaultPlan::new().is_empty());
    }

    #[test]
    fn parse_round_trips_every_key() {
        let plan =
            FaultPlan::parse("nan_apply=3, inf_apply=4,singular_shift=0,panic_task=2,injector_full=1,stall=1:50,matvecs=100,restarts=8")
                .unwrap();
        assert_eq!(plan.nan_apply, Some(3));
        assert_eq!(plan.inf_apply, Some(4));
        assert_eq!(plan.singular_shift, Some(0));
        assert_eq!(plan.panic_task, Some(2));
        assert!(plan.injector_full);
        assert_eq!(plan.stall, Some((1, Duration::from_millis(50))));
        assert_eq!(plan.budget_matvecs, Some(100));
        assert_eq!(plan.budget_restarts, Some(8));
        assert!(!plan.is_empty());
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in ["nan_apply", "nan_apply=x", "bogus_key=1", "stall=1:zz"] {
            match FaultPlan::parse(bad) {
                Err(SolverError::InvalidFaultPlan(_)) => {}
                other => panic!("spec `{bad}`: expected InvalidFaultPlan, got {other:?}"),
            }
        }
        // Empty clauses and surrounding whitespace are tolerated.
        assert!(FaultPlan::parse("").unwrap().is_empty());
        assert!(FaultPlan::parse(" , ,").unwrap().is_empty());
    }

    #[test]
    fn activation_arms_the_requested_fire_points() {
        let plan = FaultPlan::parse("panic_task=1,matvecs=10").unwrap();
        let active = plan.activate();
        assert!(!active.control.is_inert(), "budget makes control live");
        assert!(!active.should_panic_task(), "occurrence 0 does not fire");
        assert!(active.should_panic_task(), "occurrence 1 fires");
        assert!(!active.should_panic_task(), "fires exactly once");
        assert_eq!(active.faults_injected(), 1);
        // The shared budget exhausts across clones.
        let clone = active.clone();
        clone.control.charge_matvecs(11);
        assert!(active.control.budget_exhausted());
    }

    #[test]
    fn seeded_plans_are_deterministic_and_armed() {
        let a = FaultPlan::seeded(42);
        let b = FaultPlan::seeded(42);
        assert_eq!(a, b);
        assert!(a.nan_apply.is_some() || a.inf_apply.is_some());
        assert!(a.singular_shift.is_some());
        assert!(a.panic_task.is_some());
        assert_ne!(FaultPlan::seeded(1), FaultPlan::seeded(2));
    }
}
