//! The end-to-end macromodeling pipeline the paper's introduction
//! motivates: tabulated frequency data (a Touchstone deck) is fitted to a
//! rational macromodel (Vector Fitting), realized as the structured
//! state-space quadruple, passivity-characterized via the multi-shift
//! Hamiltonian sweep, and — when violations exist — perturbatively
//! enforced passive.
//!
//! Stage boundaries follow the workspace layering (each stage is the
//! public entry point of one crate, so every stage stays independently
//! testable):
//!
//! ```text
//! Touchstone text/path        pheig-model::touchstone (S/Y/Z -> S)
//!   -> FrequencySamples
//!   -> VectorFitOutcome       pheig-vectorfit::vector_fit
//!   -> StateSpace             VectorFitOutcome::state_space
//!   -> SolverOutcome          pheig-core::solver (multi-shift sweep)
//!   -> PassivityReport        pheig-core::characterization
//!   -> EnforcementOutcome     pheig-core::enforcement (skipped if passive)
//!   -> PassiveModel + PipelineReport
//! ```
//!
//! [`run_batch`] drives many decks through this flow as a job cohort on
//! the persistent work-stealing [`Executor`]:
//! workers are spawned once per process, each executes jobs against a
//! pooled [`SolverWorkspace`] — the PR 2 scratch-reuse contract extended
//! across models *and* across batches.

use crate::characterization::{characterize, PassivityReport};
use crate::enforcement::EnforcementOptions;
use crate::error::SolverError;
use crate::exec::{Executor, Task, TaskContext};
use crate::fault::FaultPlan;
use crate::scheduler::SchedulerStats;
use crate::solver::{
    find_imaginary_eigenvalues_with, RecycleCounters, ShiftRecord, SolverOptions, SolverWorkspace,
};
use parking_lot::Mutex;
use pheig_model::touchstone::{read_touchstone, read_touchstone_path};
use pheig_model::{FrequencySamples, PoleResidueModel, StateSpace};
use pheig_vectorfit::{vector_fit, VectorFitOptions};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Options for one pipeline run.
#[derive(Debug, Clone)]
pub struct PipelineOptions {
    /// Vector Fitting configuration (order, iterations, starts).
    pub vectorfit: VectorFitOptions,
    /// Eigensolver configuration for *every* sweep of the run: the
    /// characterization stage, the enforcement re-characterizations, and
    /// the final verification all use this one configuration, so the
    /// before/after reports are directly comparable.
    pub solver: SolverOptions,
    /// Enforcement tuning (iterations, contraction, regularization).
    /// Its `solver` sub-options are ignored — [`PipelineOptions::solver`]
    /// is used instead, so the two sweep configurations cannot drift
    /// apart.
    pub enforcement: EnforcementOptions,
}

impl PipelineOptions {
    /// Defaults: 8 poles per column, 8 relocation iterations, serial
    /// solver, default enforcement.
    pub fn new() -> Self {
        PipelineOptions {
            vectorfit: VectorFitOptions::new(8).with_iterations(8),
            solver: SolverOptions::default(),
            enforcement: EnforcementOptions::default(),
        }
    }

    /// Sets the Vector Fitting order (poles per port column).
    pub fn with_poles_per_column(mut self, poles: usize) -> Self {
        self.vectorfit.poles_per_column = poles;
        self
    }

    /// Sets the worker-thread count of every eigensolver sweep.
    pub fn with_solver_threads(mut self, threads: usize) -> Self {
        self.solver = self.solver.with_threads(threads);
        self
    }

    /// Arms a fault-injection plan on every eigensolver sweep of the run
    /// (chaos testing; forwards to [`SolverOptions::with_fault_plan`]).
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.solver = self.solver.with_fault_plan(plan);
        self
    }
}

impl Default for PipelineOptions {
    fn default() -> Self {
        Self::new()
    }
}

/// Diagnostics of the identification stage.
#[derive(Debug, Clone)]
pub struct FitDiagnostics {
    /// Root-mean-square entrywise fit error over the input grid.
    pub rms_error: f64,
    /// Largest entrywise fit error.
    pub max_error: f64,
    /// Dynamic order of the fitted realization.
    pub order: usize,
    /// Port count.
    pub ports: usize,
    /// Number of frequency samples consumed.
    pub samples: usize,
    /// Wall-clock time of the fit.
    pub wall: Duration,
}

/// Diagnostics of one eigenvalue sweep (characterization stage).
#[derive(Debug, Clone)]
pub struct SweepDiagnostics {
    /// Crossing frequencies located.
    pub crossings: usize,
    /// The search band covered.
    pub band: (f64, f64),
    /// Scheduler counters (processed / deleted / trimmed / split).
    pub scheduler: SchedulerStats,
    /// Total operator applications across all shifts.
    pub total_matvecs: usize,
    /// Per-shift telemetry in deterministic (frequency) order.
    pub shift_log: Vec<ShiftRecord>,
    /// Recycling telemetry of this stage's sweep.
    pub recycle: RecycleCounters,
    /// Shifts the sweep's degradation ladder quarantined (0 on a healthy
    /// run; see [`crate::solver::SolverOutcome::quarantined`]).
    pub shifts_quarantined: usize,
    /// Fraction of the band covered by certified disks (`1.0` healthy).
    pub covered_fraction: f64,
    /// Faults the armed fault plan fired during this sweep.
    pub faults_injected: u64,
    /// Wall-clock time of the sweep.
    pub wall: Duration,
}

/// Diagnostics of the enforcement stage (`None` when the fitted model was
/// already passive and the stage was skipped).
#[derive(Debug, Clone)]
pub struct EnforcementDiagnostics {
    /// Outer enforcement iterations performed.
    pub iterations: usize,
    /// Frobenius norm of the total applied residue perturbation.
    pub delta_c_norm: f64,
    /// Recycling telemetry aggregated over the stage's re-characterization
    /// sweeps.
    pub recycle: RecycleCounters,
    /// Wall-clock time of the enforcement loop.
    pub wall: Duration,
}

/// Per-stage report of one pipeline run.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// Identification diagnostics.
    pub fit: FitDiagnostics,
    /// Characterization sweep diagnostics.
    pub sweep: SweepDiagnostics,
    /// Passivity report of the *fitted* model (violations before).
    pub initial_report: PassivityReport,
    /// Enforcement diagnostics (`None` when skipped).
    pub enforcement: Option<EnforcementDiagnostics>,
    /// Passivity report of the *output* model (violations after; empty
    /// bands on success).
    pub final_report: PassivityReport,
    /// End-to-end wall-clock time.
    pub wall: Duration,
}

impl PipelineReport {
    /// Number of violation bands remaining in the output model (0 on
    /// success).
    pub fn residual_violations(&self) -> usize {
        self.final_report.bands.len()
    }
}

impl fmt::Display for PipelineReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "fit:       order {} / {} port(s), {} samples, rms {:.3e}, max {:.3e} ({:.1} ms)",
            self.fit.order,
            self.fit.ports,
            self.fit.samples,
            self.fit.rms_error,
            self.fit.max_error,
            self.fit.wall.as_secs_f64() * 1e3
        )?;
        writeln!(
            f,
            "sweep:     {} crossing(s) on [{:.4}, {:.4}], {} shift(s), {} matvecs, \
             {} warm-started, {} deleted tentative ({:.1} ms)",
            self.sweep.crossings,
            self.sweep.band.0,
            self.sweep.band.1,
            self.sweep.shift_log.len(),
            self.sweep.total_matvecs,
            self.sweep.recycle.warm_started_shifts,
            self.sweep.scheduler.deleted_tentative,
            self.sweep.wall.as_secs_f64() * 1e3
        )?;
        writeln!(
            f,
            "violations before: {} band(s), max sigma {:.6}",
            self.initial_report.bands.len(),
            self.initial_report.max_sigma()
        )?;
        match &self.enforcement {
            Some(e) => writeln!(
                f,
                "enforce:   {} iteration(s), ||Delta C||_F = {:.3e} ({:.1} ms)",
                e.iterations,
                e.delta_c_norm,
                e.wall.as_secs_f64() * 1e3
            )?,
            None => writeln!(f, "enforce:   skipped (already passive)")?,
        }
        write!(
            f,
            "violations after:  {} band(s), max sigma {:.6} (total {:.1} ms)",
            self.residual_violations(),
            self.final_report.max_sigma(),
            self.wall.as_secs_f64() * 1e3
        )
    }
}

/// A passivity-enforced macromodel with full provenance.
#[derive(Debug, Clone)]
pub struct PassiveModel {
    /// The fitted pole–residue model (pre-enforcement; poles and `D` are
    /// shared with the output realization).
    pub fitted: PoleResidueModel,
    /// The enforced state-space realization (perturbed `C`).
    pub state_space: StateSpace,
    /// Per-stage diagnostics.
    pub report: PipelineReport,
}

/// One macromodeling job: frequency samples waiting to be fitted,
/// characterized, and enforced.
///
/// # Example
///
/// ```no_run
/// use pheig_core::pipeline::{Pipeline, PipelineOptions};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let out = Pipeline::from_touchstone_path("device.s2p")?
///     .run(&PipelineOptions::default())?;
/// assert_eq!(out.report.residual_violations(), 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Pipeline {
    samples: FrequencySamples,
    /// Test-only seam: a poisoned pipeline unwinds at the top of
    /// [`Pipeline::run_with`], standing in for a panic in any downstream
    /// stage so the batch-level containment path is exercisable from a
    /// unit test.
    #[cfg(test)]
    poison: bool,
}

impl Pipeline {
    /// Builds a pipeline directly from frequency samples.
    pub fn from_samples(samples: FrequencySamples) -> Self {
        Pipeline {
            samples,
            #[cfg(test)]
            poison: false,
        }
    }

    /// Parses a Touchstone deck from text. Y and Z decks are converted to
    /// scattering form with the option-line reference resistance.
    ///
    /// `ports` is the port count when known (wrapped records require it);
    /// `None` infers it from the first data line.
    ///
    /// # Errors
    ///
    /// Propagates [`pheig_model::ModelError`] parse/conversion failures as
    /// [`SolverError::Model`].
    pub fn from_touchstone(text: &str, ports: Option<usize>) -> Result<Self, SolverError> {
        let deck = read_touchstone(text, ports)?;
        Ok(Pipeline::from_samples(deck.into_scattering_samples()?))
    }

    /// Parses a Touchstone deck from a file, inferring the port count from
    /// the `.sNp` extension.
    ///
    /// # Errors
    ///
    /// Same as [`Pipeline::from_touchstone`], plus I/O failures. Every
    /// error carries the offending file path
    /// ([`pheig_model::ModelError::InFile`]) in addition to the parse
    /// location, so a failing deck in a batch is identifiable from the
    /// rendered message alone.
    pub fn from_touchstone_path(path: impl AsRef<std::path::Path>) -> Result<Self, SolverError> {
        let path = path.as_ref();
        let deck = read_touchstone_path(path)?;
        let samples = deck
            .into_scattering_samples()
            .map_err(|e| pheig_model::ModelError::in_file(path, e))?;
        Ok(Pipeline::from_samples(samples))
    }

    /// The samples this pipeline will fit.
    pub fn samples(&self) -> &FrequencySamples {
        &self.samples
    }

    /// Runs the full flow: fit, characterize, enforce (when needed),
    /// re-verify.
    ///
    /// # Errors
    ///
    /// * [`SolverError::VectorFit`] when the identification stage fails
    ///   (e.g. an underdetermined fit);
    /// * solver and enforcement failures from the downstream stages.
    pub fn run(&self, opts: &PipelineOptions) -> Result<PassiveModel, SolverError> {
        self.run_with(opts, &mut SolverWorkspace::new())
    }

    /// [`Pipeline::run`] with caller-owned solver scratch, reused across
    /// every sweep of the run (characterization, enforcement trials, and
    /// final verification) — and across *models* when the caller loops.
    ///
    /// # Errors
    ///
    /// Same as [`Pipeline::run`].
    pub fn run_with(
        &self,
        opts: &PipelineOptions,
        ws: &mut SolverWorkspace,
    ) -> Result<PassiveModel, SolverError> {
        let t0 = Instant::now();
        #[cfg(test)]
        if self.poison {
            // `resume_unwind` skips the global panic hook: the unwind is
            // the scenario under test, not noise worth printing.
            std::panic::resume_unwind(Box::new("poisoned test pipeline"));
        }

        // Stage 1: rational identification.
        let t_fit = Instant::now();
        let fit = vector_fit(&self.samples, &opts.vectorfit)?;
        let ss = fit.state_space();
        let fit_diag = FitDiagnostics {
            rms_error: fit.rms_error,
            max_error: fit.max_error,
            order: ss.order(),
            ports: ss.ports(),
            samples: self.samples.len(),
            wall: t_fit.elapsed(),
        };

        // Stage 2: passivity characterization (multi-shift sweep).
        let t_sweep = Instant::now();
        let outcome = find_imaginary_eigenvalues_with(&ss, &opts.solver, ws)?;
        let initial_report = characterize(&ss, &outcome.frequencies)?;
        let sweep_diag = SweepDiagnostics {
            crossings: outcome.frequencies.len(),
            band: outcome.band,
            scheduler: outcome.stats.scheduler,
            total_matvecs: outcome.stats.total_matvecs,
            shift_log: outcome.shift_log.clone(),
            recycle: {
                let mut r = RecycleCounters::default();
                r.absorb(&outcome.stats);
                r
            },
            shifts_quarantined: outcome.stats.shifts_quarantined,
            covered_fraction: outcome.covered_fraction,
            faults_injected: outcome.stats.faults_injected,
            wall: t_sweep.elapsed(),
        };

        // Stage 3: enforcement (skipped when already passive). The stage-2
        // characterization seeds the enforcement loop so the sweep — the
        // dominant cost — is not repeated on the unperturbed model, and
        // every sweep runs under the same `opts.solver` configuration.
        let (state_space, enforcement, final_report) = if initial_report.is_passive() {
            (ss, None, initial_report.clone())
        } else {
            let t_enf = Instant::now();
            let mut enf_opts = opts.enforcement.clone();
            enf_opts.solver = opts.solver.clone();
            let enforced = crate::enforcement::enforce_with_seed(
                &ss,
                &enf_opts,
                ws,
                Some((&outcome, &initial_report)),
            )?;
            let diag = EnforcementDiagnostics {
                iterations: enforced.iterations,
                delta_c_norm: enforced.delta_c_norm,
                recycle: enforced.recycle,
                wall: t_enf.elapsed(),
            };
            (enforced.state_space, Some(diag), enforced.final_report)
        };

        Ok(PassiveModel {
            fitted: fit.model,
            state_space,
            report: PipelineReport {
                fit: fit_diag,
                sweep: sweep_diag,
                initial_report,
                enforcement,
                final_report,
                wall: t0.elapsed(),
            },
        })
    }
}

/// Shared state of one batch cohort: the job list, the pull counter, and
/// the per-slot result cells. Public only as a
/// [`Task::BatchJob`](crate::exec::Task) payload; constructed and owned
/// by [`run_batch`], which joins the cohort itself.
pub struct BatchShare<'a> {
    pipelines: &'a [Pipeline],
    opts: &'a PipelineOptions,
    next: AtomicUsize,
    results: &'a [Mutex<Option<Result<PassiveModel, SolverError>>>],
}

impl BatchShare<'_> {
    /// One cohort membership: pull jobs from the shared counter until the
    /// batch is drained. Job-level work stealing falls out of the pull
    /// discipline — an idle member takes the next job wherever it is, so
    /// one hard enforcement job cannot serialize the batch behind it.
    pub(crate) fn run(&self, ctx: &mut TaskContext<'_>) {
        loop {
            let idx = self.next.fetch_add(1, Ordering::Relaxed);
            let Some(pipeline) = self.pipelines.get(idx) else {
                break;
            };
            // A panicking job is contained here, at the job boundary: its
            // slot reports a typed error while sibling jobs (and this
            // member, which moves on to the next slot) run unaffected.
            let result = catch_unwind(AssertUnwindSafe(|| {
                pipeline.run_with(self.opts, ctx.workspace())
            }))
            .unwrap_or_else(|payload| Err(SolverError::from_panic(payload.as_ref())));
            *self.results[idx].lock() = Some(result);
        }
    }
}

/// Drives many pipelines with `threads`-way parallelism on the persistent
/// work-stealing executor.
///
/// The batch is submitted as one job cohort: `threads - 1` pool members
/// plus the calling thread pull jobs from a shared counter, so stragglers
/// do not serialize the batch; results keep input order. Pool workers are
/// spawned **once per process** ([`Executor::pool`]) and execute jobs
/// against pooled [`SolverWorkspace`]s, so Krylov scratch is reused
/// across shifts, sweeps, models, and whole batches. `threads = 1`
/// degenerates to a sequential loop on the calling thread. Batch
/// parallelism composes with `opts.solver.threads` sweep parallelism —
/// nested sweeps schedule on the *same* pool instead of spawning their
/// own (see `crate::exec`).
///
/// Results are identical to the sequential path bit for bit, for any
/// thread count: jobs are independent and workspace contents never
/// influence results.
///
/// Per-job errors are reported per slot rather than aborting the batch.
pub fn run_batch(
    pipelines: &[Pipeline],
    opts: &PipelineOptions,
    threads: usize,
) -> Vec<Result<PassiveModel, SolverError>> {
    let concurrency = threads.max(1).min(pipelines.len().max(1));
    let results: Vec<Mutex<Option<Result<PassiveModel, SolverError>>>> =
        pipelines.iter().map(|_| Mutex::new(None)).collect();
    let share = BatchShare {
        pipelines,
        opts,
        next: AtomicUsize::new(0),
        results: &results,
    };
    let exec = Executor::current_or_pool(concurrency - 1);
    // Job-body panics are contained per slot inside `BatchShare::run`;
    // `run_caught` additionally contains anything that unwinds outside a
    // job body, so a batch can never abort the process.
    let cohort = exec.run_caught(Task::BatchJob(&share), concurrency - 1);
    results
        .into_iter()
        .map(|slot| {
            slot.into_inner().unwrap_or_else(|| {
                Err(match &cohort {
                    Err(payload) => SolverError::from_panic(payload.as_ref()),
                    Ok(()) => SolverError::TaskPanicked {
                        message: "batch job slot left unfilled".to_string(),
                    },
                })
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pheig_model::generator::{generate_case, CaseSpec};
    use pheig_model::touchstone::{write_touchstone, TouchstoneOptions};
    use pheig_model::transfer::sigma_max;

    fn nonpassive_deck() -> String {
        let reference = generate_case(&CaseSpec::demo_nonpassive()).unwrap();
        let samples = FrequencySamples::from_model(&reference, 0.01, 13.0, 200).unwrap();
        write_touchstone(&samples, &TouchstoneOptions::default())
    }

    #[test]
    fn touchstone_deck_to_passive_model() {
        let deck = nonpassive_deck();
        let pipeline = Pipeline::from_touchstone(&deck, None).unwrap();
        let out = pipeline.run(&PipelineOptions::default()).unwrap();
        assert!(
            out.report.fit.rms_error < 1e-5,
            "rms {}",
            out.report.fit.rms_error
        );
        assert!(
            !out.report.initial_report.is_passive(),
            "reference has violations"
        );
        assert!(out.report.enforcement.is_some());
        assert_eq!(out.report.residual_violations(), 0);
        assert!(out.report.final_report.is_passive());
        // Old peaks are at or below the threshold in the output model.
        for b in &out.report.initial_report.bands {
            let s = sigma_max(&out.state_space, b.peak_omega).unwrap();
            assert!(s <= 1.0 + 1e-9, "sigma({}) = {s}", b.peak_omega);
        }
        // The Display form mentions the headline numbers.
        let text = out.report.to_string();
        assert!(text.contains("violations after:  0 band(s)"), "{text}");
    }

    #[test]
    fn passive_deck_skips_enforcement() {
        let reference =
            generate_case(&CaseSpec::new(12, 2).with_seed(55).with_target_crossings(0)).unwrap();
        let samples = FrequencySamples::from_model(&reference, 0.01, 12.0, 160).unwrap();
        let out = Pipeline::from_samples(samples)
            .run(&PipelineOptions::default())
            .unwrap();
        assert!(out.report.enforcement.is_none());
        assert!(out.report.initial_report.is_passive());
        assert_eq!(out.report.residual_violations(), 0);
        assert!(out.report.to_string().contains("skipped"));
    }

    #[test]
    fn batch_results_keep_order_and_match_sequential() {
        let mut jobs = Vec::new();
        for seed in [55u64, 56] {
            let reference = generate_case(
                &CaseSpec::new(10, 2)
                    .with_seed(seed)
                    .with_target_crossings(0),
            )
            .unwrap();
            let samples = FrequencySamples::from_model(&reference, 0.01, 12.0, 140).unwrap();
            jobs.push(Pipeline::from_samples(samples));
        }
        let opts = PipelineOptions::default();
        let parallel = run_batch(&jobs, &opts, 2);
        assert_eq!(parallel.len(), 2);
        for (job, got) in jobs.iter().zip(&parallel) {
            let want = job.run(&opts).unwrap();
            let got = got.as_ref().expect("batch job succeeded");
            assert_eq!(got.report.sweep.crossings, want.report.sweep.crossings);
            assert_eq!(got.report.fit.order, want.report.fit.order);
            assert!((got.report.fit.rms_error - want.report.fit.rms_error).abs() < 1e-12);
        }
        // Degenerate batches are fine.
        assert!(run_batch(&[], &opts, 4).is_empty());
    }

    #[test]
    fn batch_with_parallel_sweeps_nests_on_one_pool() {
        // Batch-level and sweep-level parallelism compose: each job's
        // multi-shift sweep opens a nested cohort, which must land on the
        // same persistent pool (no nested pool spawning) and still agree
        // with the fully serial configuration.
        let mut jobs = Vec::new();
        for seed in [55u64, 56, 57] {
            let reference = generate_case(
                &CaseSpec::new(10, 2)
                    .with_seed(seed)
                    .with_target_crossings(0),
            )
            .unwrap();
            let samples = FrequencySamples::from_model(&reference, 0.01, 12.0, 140).unwrap();
            jobs.push(Pipeline::from_samples(samples));
        }
        let serial_opts = PipelineOptions::default();
        let nested_opts = PipelineOptions::default().with_solver_threads(2);
        let want: Vec<_> = jobs.iter().map(|j| j.run(&serial_opts).unwrap()).collect();

        let got = run_batch(&jobs, &nested_opts, 2);
        for (g, w) in got.iter().zip(&want) {
            let g = g.as_ref().expect("nested batch job succeeded");
            assert_eq!(g.report.sweep.crossings, w.report.sweep.crossings);
            assert_eq!(g.report.fit.order, w.report.fit.order);
        }
        // The first batch may create the cached pool; afterwards the
        // worker population must stay flat — nested sweeps reuse the same
        // pool instead of spawning their own.
        let spawned_after_first = crate::exec::threads_spawned_total();
        let again = run_batch(&jobs, &nested_opts, 2);
        assert!(again.iter().all(Result::is_ok));
        assert_eq!(
            crate::exec::threads_spawned_total(),
            spawned_after_first,
            "a repeated nested batch spawned new workers"
        );
    }

    #[test]
    fn panicking_batch_job_is_typed_while_siblings_complete() {
        // Job 1's body unwinds (via the test-only poison seam, standing
        // in for a panic anywhere in the fit/sweep/enforcement stages).
        // Its slot must report the typed `TaskPanicked` error; the
        // sibling jobs — including ones pulled *after* the panic by the
        // same cohort member — must complete with their usual results.
        let mut jobs = Vec::new();
        for seed in [55u64, 56, 57] {
            let reference = generate_case(
                &CaseSpec::new(10, 2)
                    .with_seed(seed)
                    .with_target_crossings(0),
            )
            .unwrap();
            let samples = FrequencySamples::from_model(&reference, 0.01, 12.0, 140).unwrap();
            jobs.push(Pipeline::from_samples(samples));
        }
        let opts = PipelineOptions::default();
        let want: Vec<_> = jobs.iter().map(|j| j.run(&opts).unwrap()).collect();
        jobs[1].poison = true;

        for threads in [1usize, 2] {
            let results = run_batch(&jobs, &opts, threads);
            assert_eq!(results.len(), 3);
            let Err(err) = &results[1] else {
                panic!("poisoned job must fail")
            };
            assert!(
                matches!(err, SolverError::TaskPanicked { .. }),
                "expected TaskPanicked, got {err:?}"
            );
            assert!(err.to_string().contains("poisoned"), "{err}");
            for i in [0usize, 2] {
                let got = results[i].as_ref().expect("sibling job must complete");
                assert_eq!(got.report.sweep.crossings, want[i].report.sweep.crossings);
                assert_eq!(got.report.fit.order, want[i].report.fit.order);
                assert!((got.report.fit.rms_error - want[i].report.fit.rms_error).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn batch_reports_per_job_errors() {
        // Job 0 is unfittable with these options (underdetermined); job 1
        // is fine — the batch must return one Err and one Ok.
        let reference =
            generate_case(&CaseSpec::new(8, 2).with_seed(7).with_target_crossings(0)).unwrap();
        let tiny = FrequencySamples::from_model(&reference, 0.1, 10.0, 3).unwrap();
        let good = FrequencySamples::from_model(&reference, 0.01, 12.0, 120).unwrap();
        let jobs = vec![Pipeline::from_samples(tiny), Pipeline::from_samples(good)];
        let results = run_batch(&jobs, &PipelineOptions::default(), 2);
        assert!(results[0].is_err());
        assert!(results[1].is_ok());
    }

    #[test]
    fn malformed_touchstone_is_a_typed_error() {
        assert!(matches!(
            Pipeline::from_touchstone("# GHz S XX\n1.0 0.0 0.0\n", None),
            Err(SolverError::Model(
                pheig_model::ModelError::TouchstoneSyntax { .. }
            ))
        ));
        assert!(Pipeline::from_touchstone_path("/nonexistent/x.s2p").is_err());
    }

    #[test]
    fn touchstone_path_errors_carry_the_offending_path() {
        let dir = std::env::temp_dir().join("pheig-pipeline-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mangled.s2p");
        std::fs::write(&path, "# GHz S RI R 50\n0.1 0.9 0.0 garbage\n").unwrap();
        let err = Pipeline::from_touchstone_path(&path).unwrap_err();
        let text = err.to_string();
        assert!(
            text.contains("mangled.s2p"),
            "path missing from error: {text}"
        );
        assert!(
            text.contains("line 2"),
            "line number missing from error: {text}"
        );
        std::fs::remove_file(&path).ok();
    }
}
