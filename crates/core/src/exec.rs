//! The persistent work-stealing execution layer (Sec. IV.C's "one pool of
//! long-lived workers pulling shifts", lifted to every parallel layer of
//! the workspace).
//!
//! Before this module existed, each parallel layer spawned its own
//! `std::thread::scope` pool per call: [`crate::pipeline::run_batch`] per
//! batch, the sweep driver in [`crate::solver`] per sweep, and the
//! enforcement loop per re-characterization — so nested layers
//! oversubscribed cores and rebuilt workers (and their Krylov scratch) on
//! every invocation. This module replaces all of that with **one**
//! persistent executor per configured width:
//!
//! * **Workers are spawned once.** [`Executor::pool`] caches one executor
//!   per worker count for the lifetime of the process; repeated batches,
//!   sweeps, and enforcement iterations reuse the same OS threads
//!   ([`threads_spawned_total`] is pinned flat in steady state by
//!   `crates/core/tests/exec_steady_state.rs`).
//! * **Workers own the solver scratch.** The executor keeps a checkout
//!   pool of [`SolverWorkspace`]s; every task executes against one, so the
//!   PR 2 workspace-reuse contract ("whoever loops owns the scratch") now
//!   has a single owner: the execution layer.
//! * **One task taxonomy.** [`Task`] is the unified currency: batch
//!   pipeline jobs, multi-shift sweep membership (characterization *and*
//!   enforcement re-sweeps, distinguished by [`SweepOrigin`]), and a
//!   telemetry probe. All layers schedule on the same deques, so an idle
//!   worker steals whatever is queued — batch jobs or sweep memberships
//!   alike. (One asymmetry remains: a sweep member that finds the shift
//!   queue momentarily empty parks on the sweep's own condvar rather
//!   than returning to the pool, so it is unavailable to other cohorts
//!   until its sweep completes — the same behavior the pre-executor
//!   dedicated sweep threads had.)
//! * **Chase–Lev-style deques, in-repo.** Each worker owns a lock-free
//!   deque (owner pushes/pops the bottom, thieves CAS the top — the
//!   Chase–Lev 2005 discipline with the Lê et al. 2013 orderings);
//!   external submitters go through a bounded injector queue. Entries are
//!   single machine words, so steady-state submission and execution
//!   allocate nothing per task.
//!
//! # Cohorts
//!
//! The submission unit is a *cohort* ([`Executor::run_cohort`]): `extra`
//! copies of one [`Task`] are pushed to the pool while the calling thread
//! runs the same task inline as the cohort's first member, then waits for
//! the copies — **helping** with any queued work while it waits, which is
//! what makes nested cohorts (a batch job whose sweep fans out on the same
//! pool) deadlock-free by construction: every cohort's owner participates,
//! so progress never depends on a pool worker being free.
//!
//! Cohort tasks are pull loops over shared state (an atomic job counter, a
//! locked [`Scheduler`](crate::scheduler::Scheduler)), so work-stealing
//! granularity is a whole pull loop while load balancing happens at the
//! item level — stragglers cannot serialize a batch, and a cohort with
//! more members than free workers degrades gracefully (queued members find
//! the shared state drained and return immediately).

pub mod gate;
pub mod lockfree;

use self::gate::{CohortLatch, WakeGate};
use self::lockfree::{Deque, Injector, Steal};
use crate::pipeline::BatchShare;
use crate::solver::{SolverWorkspace, SweepShare};
use parking_lot::Mutex;
use std::any::Any;
use std::cell::RefCell;
use std::fmt;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Per-worker deque capacity (power of two). Overflow spills to the
/// injector, so this is a fast-path size, not a correctness limit.
const DEQUE_CAPACITY: usize = 256;

/// Injector ring capacity (power of two). A full ring is not an error:
/// the submitter helps drain one entry and retries, so a burst larger
/// than the ring degrades to inline execution instead of allocating.
const INJECTOR_CAPACITY: usize = 1024;

/// Workspace checkout-pool capacity reserved at construction.
const WORKSPACE_RESERVE: usize = 64;

/// Idle parking interval: wakeups are notification-driven; the timeout is
/// a defensive backstop, not the scheduling mechanism.
const PARK_INTERVAL: Duration = Duration::from_millis(50);

/// Total executor worker threads spawned by this process (monotonic).
static SPAWNED: AtomicUsize = AtomicUsize::new(0);

/// Number of executor worker threads this process has ever spawned.
///
/// Steady-state pin: after warm-up, repeated batches/sweeps must leave
/// this flat — the whole point of the persistent pool.
pub fn threads_spawned_total() -> usize {
    SPAWNED.load(Ordering::Relaxed)
}

/// Which layer a [`Task::ShiftSweep`] serves: the pipeline's one-shot
/// characterization sweep, or one of the enforcement loop's
/// re-characterization sweeps. Purely telemetry — both schedule
/// identically — but it makes [`ExecutorStats`] show where sweep work
/// actually comes from (enforcement typically dominates).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepOrigin {
    /// A passivity-characterization sweep (pipeline stage 2, or a direct
    /// `find_imaginary_eigenvalues` call).
    Characterization,
    /// An enforcement-loop re-characterization sweep (line-search trials
    /// and verification sweeps).
    Enforcement,
}

/// Shared state of a telemetry probe cohort: counts executions and
/// nothing else. Used by the steady-state tests (and available to
/// monitoring) to measure the executor's own overhead — a probe cohort
/// exercises the full submit/steal/execute/wake machinery with a no-op
/// payload.
#[derive(Debug, Default)]
pub struct ProbeShare {
    hits: AtomicUsize,
}

impl ProbeShare {
    /// A fresh probe with zero hits.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of times the probe task has executed (inline run included).
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::SeqCst)
    }

    pub(crate) fn run(&self) {
        self.hits.fetch_add(1, Ordering::SeqCst);
    }
}

/// The unified task taxonomy: everything the workspace schedules in
/// parallel is one of these, so all layers share one pool instead of
/// nesting scoped thread pools.
///
/// Each variant borrows the *shared state* of one cohort; running a task
/// means joining that cohort's pull loop (jobs from an atomic counter,
/// shifts from the locked scheduler) until the shared state is drained.
#[derive(Clone, Copy)]
pub enum Task<'env> {
    /// Pull-and-run pipeline jobs from a batch
    /// ([`crate::pipeline::run_batch`]).
    BatchJob(&'env BatchShare<'env>),
    /// Pull [`Scheduler::next_shift`](crate::scheduler::Scheduler::next_shift)
    /// tasks for one multi-shift sweep; covers both characterization
    /// sweeps and enforcement re-sweeps (see [`SweepOrigin`]).
    ShiftSweep(&'env SweepShare<'env>),
    /// Telemetry probe measuring executor overhead (see [`ProbeShare`]).
    Probe(&'env ProbeShare),
    /// Test-only probe whose run panics, exercising the worker-side
    /// unwind path.
    #[cfg(test)]
    PanicProbe(&'env ProbeShare),
}

impl fmt::Debug for Task<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Task::BatchJob(_) => f.write_str("Task::BatchJob"),
            Task::ShiftSweep(s) => write!(f, "Task::ShiftSweep({:?})", s.origin()),
            Task::Probe(_) => f.write_str("Task::Probe"),
            #[cfg(test)]
            Task::PanicProbe(_) => f.write_str("Task::PanicProbe"),
        }
    }
}

impl Task<'_> {
    /// Runs one cohort membership to completion.
    fn run(&self, ctx: &mut TaskContext<'_>) {
        match self {
            Task::BatchJob(share) => share.run(ctx),
            Task::ShiftSweep(share) => share.run(ctx),
            Task::Probe(share) => share.run(),
            #[cfg(test)]
            Task::PanicProbe(share) => {
                share.run();
                panic!("PanicProbe membership failed by design");
            }
        }
    }
}

/// Execution context handed to every running task: the worker's
/// checked-out solver scratch. Workspace contents never influence results
/// (pinned by `reused_workspace_gives_identical_results`), so any task can
/// run against any workspace.
pub struct TaskContext<'a> {
    pub(crate) workspace: &'a mut SolverWorkspace,
}

impl<'a> TaskContext<'a> {
    /// Wraps caller-owned scratch as an execution context (the cohort
    /// owner's inline membership uses its own workspace, preserving the
    /// caller-owned-scratch contract of `find_imaginary_eigenvalues_with`).
    pub fn new(workspace: &'a mut SolverWorkspace) -> Self {
        TaskContext { workspace }
    }

    /// The solver scratch this task executes against.
    pub fn workspace(&mut self) -> &mut SolverWorkspace {
        self.workspace
    }
}

/// Aggregate executor telemetry (monotonic counters since pool creation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecutorStats {
    /// Pool width (worker threads; the cohort owner adds one more).
    pub workers: usize,
    /// Task executions, inline cohort memberships included.
    pub tasks_executed: u64,
    /// Executions that were batch pipeline jobs.
    pub batch_jobs: u64,
    /// Executions that were characterization sweep memberships.
    pub characterization_sweeps: u64,
    /// Executions that were enforcement re-sweep memberships.
    pub enforcement_sweeps: u64,
    /// Executions that were telemetry probes.
    pub probes: u64,
    /// Successful steals from another worker's deque.
    pub steals: u64,
}

#[derive(Default)]
struct Counters {
    executed: AtomicU64,
    batch_jobs: AtomicU64,
    characterization_sweeps: AtomicU64,
    enforcement_sweeps: AtomicU64,
    probes: AtomicU64,
    steals: AtomicU64,
}

/// One erased cohort entry: the address of a stack-pinned `GroupRecord`.
type Entry = usize;

/// The stack-pinned record behind every pool copy of a cohort task.
///
/// # Safety contract
///
/// The record lives in [`Executor::run_cohort`]'s stack frame, which does
/// not return (and therefore does not unwind past the record) until the
/// latch reaches zero. Exactly `latch` entries pointing at the record are
/// pushed, each entry is consumed exactly once, and a consumer never
/// touches the record after its [`CohortLatch::complete_one`] — so no
/// entry can outlive the frame it points into. The cohort-lifecycle model
/// harness (`crates/verify/src/harnesses.rs`) machine-checks this
/// contract: workers open read windows on a modeled record, the owner
/// opens a write window (the frame's death) only after its latch wait
/// returns, and any schedule where they overlap is reported as a race.
struct GroupRecord<'env> {
    task: Task<'env>,
    latch: CohortLatch,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

struct PoolShared {
    deques: Vec<Deque>,
    injector: Injector,
    gate: WakeGate,
    workspaces: Mutex<Vec<SolverWorkspace>>,
    counters: Counters,
}

thread_local! {
    /// The pool this thread currently schedules on, plus its worker slot
    /// when the thread *is* a pool worker (slot owners push to their own
    /// deque; everyone else goes through the injector).
    static CURRENT: RefCell<Option<(Arc<PoolShared>, Option<usize>)>> =
        const { RefCell::new(None) };
}

/// Restores the previous thread-local pool binding on drop.
struct CurrentGuard {
    prev: Option<(Arc<PoolShared>, Option<usize>)>,
    active: bool,
}

impl CurrentGuard {
    fn enter(shared: &Arc<PoolShared>) -> CurrentGuard {
        CURRENT.with(|c| {
            let mut cur = c.borrow_mut();
            match cur.as_ref() {
                // Already bound to this pool (a worker thread, or a nested
                // cohort): keep the binding — and in particular the worker
                // slot — untouched.
                Some((p, _)) if Arc::ptr_eq(p, shared) => CurrentGuard {
                    prev: None,
                    active: false,
                },
                _ => {
                    let prev = cur.replace((Arc::clone(shared), None));
                    CurrentGuard { prev, active: true }
                }
            }
        })
    }
}

impl Drop for CurrentGuard {
    fn drop(&mut self) {
        if self.active {
            let prev = self.prev.take();
            CURRENT.with(|c| *c.borrow_mut() = prev);
        }
    }
}

impl PoolShared {
    /// This thread's worker slot in *this* pool, if any.
    fn my_slot(self: &Arc<Self>) -> Option<usize> {
        CURRENT.with(|c| {
            c.borrow()
                .as_ref()
                .and_then(|(p, slot)| if Arc::ptr_eq(p, self) { *slot } else { None })
        })
    }

    /// Racy "is there anything queued" probe used to close the
    /// check-then-park race under the gate lock.
    fn maybe_work(&self) -> bool {
        self.injector.maybe_nonempty() || self.deques.iter().any(Deque::maybe_nonempty)
    }

    /// Pushes `copies` entries: to this worker's own deque when the
    /// caller is a pool worker (spilling to the injector on overflow),
    /// otherwise to the injector; then wakes sleepers. A full injector
    /// ring means queued work exists, so the submitter helps drain one
    /// entry and retries — bounded memory without a deadlock.
    fn submit(&self, entry: Entry, copies: usize, slot: Option<usize>) {
        let mut spill = copies;
        if let Some(i) = slot {
            let deque = &self.deques[i];
            while spill > 0 && deque.push(entry).is_ok() {
                spill -= 1;
            }
        }
        while spill > 0 {
            if self.injector.push(entry).is_ok() {
                spill -= 1;
            } else if let Some(queued) = self.find_entry(slot) {
                self.execute_pooled(queued);
            }
        }
        // The gate's empty critical section makes this notification
        // un-losable against a worker between its re-check and its wait.
        if copies == 1 {
            self.gate.notify_one();
        } else {
            self.gate.notify_all();
        }
    }

    /// Claims one queued entry: own deque first (when a worker), then the
    /// injector, then stealing from the other workers' deques.
    fn find_entry(&self, me: Option<usize>) -> Option<Entry> {
        if let Some(i) = me {
            if let Some(entry) = self.deques[i].pop() {
                return Some(entry);
            }
        }
        if let Some(entry) = self.injector.pop() {
            return Some(entry);
        }
        let n = self.deques.len();
        if n == 0 {
            return None;
        }
        let start = me.map_or(0, |i| i + 1);
        for k in 0..n {
            let j = (start + k) % n;
            if Some(j) == me {
                continue;
            }
            loop {
                match self.deques[j].steal() {
                    Steal::Success(entry) => {
                        self.counters.steals.fetch_add(1, Ordering::Relaxed);
                        return Some(entry);
                    }
                    Steal::Retry => continue,
                    Steal::Empty => break,
                }
            }
        }
        None
    }

    fn record(&self, task: &Task<'_>) {
        self.counters.executed.fetch_add(1, Ordering::Relaxed);
        let per_kind = match task {
            Task::BatchJob(_) => &self.counters.batch_jobs,
            Task::ShiftSweep(share) => match share.origin() {
                SweepOrigin::Characterization => &self.counters.characterization_sweeps,
                SweepOrigin::Enforcement => &self.counters.enforcement_sweeps,
            },
            Task::Probe(_) => &self.counters.probes,
            #[cfg(test)]
            Task::PanicProbe(_) => &self.counters.probes,
        };
        per_kind.fetch_add(1, Ordering::Relaxed);
    }

    /// Executes one claimed entry against `ctx`, storing any panic in the
    /// cohort record and signalling completion. The latch arrival is the
    /// last touch of the record (see [`GroupRecord`]'s safety contract).
    fn execute(&self, entry: Entry, ctx: &mut TaskContext<'_>) {
        // SAFETY: `entry` is the exposed provenance of a `GroupRecord`
        // pinned in a `run_cohort` frame that cannot return before the
        // cohort latch reaches zero; this entry was claimed exactly once,
        // and we do not touch the record after `complete_one` below.
        let group: &GroupRecord<'_> =
            unsafe { &*std::ptr::with_exposed_provenance::<GroupRecord<'_>>(entry) };
        let task = group.task;
        self.record(&task);
        let result = catch_unwind(AssertUnwindSafe(|| task.run(ctx)));
        if let Err(payload) = result {
            *group.panic.lock() = Some(payload);
        }
        // Cohort owners may be parked on the pool gate; the latch wakes
        // them when this was the last member.
        group.latch.complete_one(&self.gate);
    }

    /// Executes an entry against a checked-out pool workspace.
    fn execute_pooled(&self, entry: Entry) {
        // `SolverWorkspace::default` is an empty Vec — creating one when
        // the checkout pool is momentarily dry allocates nothing.
        let mut ws = self.workspaces.lock().pop().unwrap_or_default();
        self.execute(entry, &mut TaskContext::new(&mut ws));
        self.workspaces.lock().push(ws);
    }
}

fn worker_loop(shared: Arc<PoolShared>, index: usize) {
    CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(&shared), Some(index))));
    loop {
        if let Some(entry) = shared.find_entry(Some(index)) {
            shared.execute_pooled(entry);
        } else {
            shared
                .gate
                .park_unless(|| shared.maybe_work(), PARK_INTERVAL);
        }
    }
}

/// Process-wide executor registry: one persistent pool per width.
static POOLS: Mutex<Vec<(usize, Executor)>> = Mutex::new(Vec::new());

/// Handle to a persistent work-stealing worker pool. Cloning is cheap
/// (reference-counted); the pool itself lives for the whole process.
#[derive(Clone)]
pub struct Executor {
    shared: Arc<PoolShared>,
}

impl fmt::Debug for Executor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Executor")
            .field("workers", &self.workers())
            .finish()
    }
}

impl Executor {
    /// Spawns a fresh, uncached pool. Prefer [`Executor::pool`]; this
    /// exists for tests that need an isolated instance.
    fn spawn_pool(workers: usize) -> Executor {
        let shared = Arc::new(PoolShared {
            deques: (0..workers)
                .map(|_| Deque::with_capacity(DEQUE_CAPACITY))
                .collect(),
            injector: Injector::with_capacity(INJECTOR_CAPACITY),
            gate: WakeGate::new(),
            workspaces: Mutex::new(Vec::with_capacity(WORKSPACE_RESERVE)),
            counters: Counters::default(),
        });
        for index in 0..workers {
            let shared = Arc::clone(&shared);
            SPAWNED.fetch_add(1, Ordering::Relaxed);
            // PANIC-SAFE: worker-thread spawn fails only on OS resource
            // exhaustion, and a pool constructor has no error channel —
            // a process that cannot spawn its workers cannot run.
            #[allow(clippy::expect_used)]
            std::thread::Builder::new()
                .name(format!("pheig-exec-{index}"))
                .spawn(move || worker_loop(shared, index))
                .expect("spawn executor worker thread");
        }
        Executor { shared }
    }

    /// The process-wide persistent pool with `workers` worker threads
    /// (the calling thread always participates as one more cohort member,
    /// so total parallelism is `workers + 1`).
    ///
    /// Pools are created on first request and cached for the lifetime of
    /// the process — workers are spawned **once**, never per call. One
    /// pool exists per *distinct* width and never shuts down, so callers
    /// are expected to use few widths (production flows use one; the
    /// bench harness uses two). Idle workers cost one timed-condvar wake
    /// per `PARK_INTERVAL`; they hold no workspace while parked.
    pub fn pool(workers: usize) -> Executor {
        let mut pools = POOLS.lock();
        if let Some((_, exec)) = pools.iter().find(|(w, _)| *w == workers) {
            return exec.clone();
        }
        let exec = Executor::spawn_pool(workers);
        pools.push((workers, exec.clone()));
        exec
    }

    /// The pool the current thread is already scheduling on, if any: set
    /// for pool workers and, for the duration of a cohort, for the cohort
    /// owner — so nested layers land on the same pool instead of nesting
    /// new ones.
    pub fn current() -> Option<Executor> {
        CURRENT.with(|c| {
            c.borrow().as_ref().map(|(shared, _)| Executor {
                shared: Arc::clone(shared),
            })
        })
    }

    /// [`Executor::current`] when inside a pool (never oversubscribe from
    /// a nested layer), else the cached [`Executor::pool`] of the
    /// requested width.
    pub fn current_or_pool(workers: usize) -> Executor {
        Executor::current().unwrap_or_else(|| Executor::pool(workers))
    }

    /// Pool width (worker threads, excluding cohort owners).
    pub fn workers(&self) -> usize {
        self.shared.deques.len()
    }

    /// Telemetry snapshot.
    pub fn stats(&self) -> ExecutorStats {
        let c = &self.shared.counters;
        ExecutorStats {
            workers: self.workers(),
            tasks_executed: c.executed.load(Ordering::Relaxed),
            batch_jobs: c.batch_jobs.load(Ordering::Relaxed),
            characterization_sweeps: c.characterization_sweeps.load(Ordering::Relaxed),
            enforcement_sweeps: c.enforcement_sweeps.load(Ordering::Relaxed),
            probes: c.probes.load(Ordering::Relaxed),
            steals: c.steals.load(Ordering::Relaxed),
        }
    }

    /// Runs `f` against a workspace checked out from the executor's pool,
    /// so scratch persists across calls (batches, enforcement sweeps)
    /// instead of being rebuilt per invocation. The checkout is returned
    /// even when `f` unwinds — a contained panic must not leak the slot.
    pub fn with_workspace<R>(&self, f: impl FnOnce(&mut SolverWorkspace) -> R) -> R {
        let mut ws = self.shared.workspaces.lock().pop().unwrap_or_default();
        let result = catch_unwind(AssertUnwindSafe(|| f(&mut ws)));
        self.shared.workspaces.lock().push(ws);
        match result {
            Ok(r) => r,
            Err(payload) => resume_unwind(payload),
        }
    }

    /// [`Executor::run_cohort`] with the caller's workspace checked out
    /// from the executor pool.
    pub fn run(&self, task: Task<'_>, extra: usize) {
        self.with_workspace(|ws| self.run_cohort(task, extra, &mut TaskContext::new(ws)));
    }

    /// [`Executor::run_cohort_caught`] with the caller's workspace checked
    /// out from the executor pool: a panicking cohort surfaces as an `Err`
    /// payload here, with the workspace already returned to the pool.
    pub fn run_caught(&self, task: Task<'_>, extra: usize) -> Result<(), Box<dyn Any + Send>> {
        self.with_workspace(|ws| self.run_cohort_caught(task, extra, &mut TaskContext::new(ws)))
    }

    /// Runs a cohort of `extra + 1` copies of `task`: `extra` copies on
    /// the pool, plus one inline on the calling thread (the cohort
    /// owner). Returns when **all** copies have finished; the owner helps
    /// execute queued work — from this or any other cohort — while it
    /// waits, which keeps nested cohorts deadlock-free on any pool width
    /// (including zero workers).
    ///
    /// Helping is deliberately indiscriminate (the rayon `join`
    /// trade-off): an owner may claim another cohort's pull loop and run
    /// it to drain, extending its own return by that foreign workload.
    /// Within this workspace cohorts come from one tool flow, so the
    /// helped work is always work the process wants done; callers mixing
    /// independent latency-sensitive batches on one pool should use
    /// separate pools.
    ///
    /// # Panics
    ///
    /// Re-raises the first panic observed in any cohort member after the
    /// whole cohort has completed.
    pub fn run_cohort(&self, task: Task<'_>, extra: usize, ctx: &mut TaskContext<'_>) {
        if let Err(payload) = self.run_cohort_caught(task, extra, ctx) {
            resume_unwind(payload);
        }
    }

    /// [`Executor::run_cohort`] with panic *containment* instead of
    /// propagation: the whole cohort still runs to completion (the latch
    /// counts a panicked member as completed-with-error, so no member is
    /// lost and no waiter deadlocks), but the first observed panic payload
    /// is returned as `Err` rather than re-raised. This is the boundary
    /// the solver layers use to convert unwinds into typed
    /// [`SolverError::TaskPanicked`](crate::error::SolverError::TaskPanicked)
    /// values.
    pub fn run_cohort_caught(
        &self,
        task: Task<'_>,
        extra: usize,
        ctx: &mut TaskContext<'_>,
    ) -> Result<(), Box<dyn Any + Send>> {
        let shared = &self.shared;
        let _bind = CurrentGuard::enter(shared);
        if extra == 0 {
            // Degenerate cohort: just the owner. Still bound to the pool
            // so nested layers reuse it — and still caught, so a panicking
            // solo membership is contained like any other.
            shared.record(&task);
            return catch_unwind(AssertUnwindSafe(|| task.run(ctx)));
        }
        let group = GroupRecord {
            task,
            latch: CohortLatch::new(extra),
            panic: Mutex::new(None),
        };
        // Expose the record's provenance so consumers can soundly rebuild
        // a reference from the word-sized entry (`execute`'s
        // `with_exposed_provenance` counterpart).
        let entry = std::ptr::from_ref(&group).expose_provenance();
        let slot = shared.my_slot();
        shared.submit(entry, extra, slot);
        shared.record(&task);
        let inline_result = catch_unwind(AssertUnwindSafe(|| task.run(ctx)));
        // Completion barrier: every pushed entry must be consumed before
        // `group` leaves scope (see the GroupRecord safety contract).
        group.latch.wait(
            &shared.gate,
            || match shared.find_entry(slot) {
                Some(e) => {
                    shared.execute(e, ctx);
                    true
                }
                None => false,
            },
            || shared.maybe_work(),
            PARK_INTERVAL,
        );
        if let Some(payload) = group.panic.lock().take() {
            return Err(payload);
        }
        inline_result
    }

    /// Fault-injection hook: deterministically drives the bounded
    /// injector into its full-ring backpressure branch. A zero-worker
    /// pool's owner is the only drainer, so submitting more copies than
    /// [`injector_capacity`] forces `submit` through the help-drain path
    /// (push fails → owner executes one queued entry inline → retry) for
    /// every overflowing copy. Returns the number of executed memberships
    /// so callers can assert none were lost.
    pub fn exercise_injector_backpressure(copies: usize) -> usize {
        let exec = Executor::spawn_pool(0);
        let probe = ProbeShare::new();
        exec.run(Task::Probe(&probe), copies);
        probe.hits()
    }
}

/// Capacity of the bounded injector ring (see
/// [`Executor::exercise_injector_backpressure`]).
pub fn injector_capacity() -> usize {
    INJECTOR_CAPACITY
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probe_cohort(exec: &Executor, extra: usize) -> usize {
        let probe = ProbeShare::new();
        exec.run(Task::Probe(&probe), extra);
        probe.hits()
    }

    #[test]
    fn deque_push_pop_steal() {
        let d = Deque::with_capacity(DEQUE_CAPACITY);
        assert!(d.pop().is_none());
        assert!(matches!(d.steal(), Steal::Empty));
        for v in 1..=5usize {
            d.push(v).unwrap();
        }
        // Owner pops LIFO.
        assert_eq!(d.pop(), Some(5));
        // Thief steals FIFO.
        match d.steal() {
            Steal::Success(v) => assert_eq!(v, 1),
            _ => panic!("steal failed"),
        }
        assert_eq!(d.pop(), Some(4));
        assert_eq!(d.pop(), Some(3));
        assert_eq!(d.pop(), Some(2));
        assert!(d.pop().is_none());
        assert!(matches!(d.steal(), Steal::Empty));
        // Refill after drain still works (wrapping indices).
        for v in 10..=11usize {
            d.push(v).unwrap();
        }
        assert_eq!(d.pop(), Some(11));
        assert_eq!(d.pop(), Some(10));
    }

    #[test]
    fn deque_overflow_is_reported() {
        let d = Deque::with_capacity(DEQUE_CAPACITY);
        for v in 0..DEQUE_CAPACITY {
            d.push(v + 1).unwrap();
        }
        assert_eq!(d.push(99), Err(99));
    }

    #[test]
    fn injector_ring_is_fifo_and_bounded() {
        let inj = Injector::with_capacity(4);
        assert!(inj.pop().is_none());
        for v in 1..=4usize {
            inj.push(v).unwrap();
        }
        assert_eq!(inj.push(5), Err(5), "full ring must report overflow");
        assert_eq!(inj.pop(), Some(1));
        // Freed slot is reusable one lap ahead.
        inj.push(5).unwrap();
        for expect in 2..=5usize {
            assert_eq!(inj.pop(), Some(expect));
        }
        assert!(inj.pop().is_none());
    }

    #[test]
    fn cohort_runs_exactly_extra_plus_one_times() {
        let exec = Executor::spawn_pool(2);
        for extra in [0usize, 1, 2, 7] {
            assert_eq!(probe_cohort(&exec, extra), extra + 1, "extra = {extra}");
        }
    }

    #[test]
    fn zero_worker_pool_still_completes_cohorts() {
        // All pool copies are executed by the helping owner.
        let exec = Executor::spawn_pool(0);
        assert_eq!(probe_cohort(&exec, 5), 6);
        assert_eq!(exec.stats().probes, 6);
    }

    #[test]
    fn repeated_oversubscribed_cohorts_complete() {
        // More cohort members than pool workers, over and over: queued
        // copies must always be consumed (by workers or the helping
        // owner), never lost or double-run.
        let exec = Executor::spawn_pool(1);
        for round in 1..=20usize {
            assert_eq!(probe_cohort(&exec, 6), 7, "round {round}");
        }
        assert_eq!(exec.stats().probes, 20 * 7);
    }

    #[test]
    fn back_to_back_cohorts_share_one_context() {
        // The enforcement-loop shape: many cohorts in a row against one
        // caller-owned workspace, same pool throughout. (Genuine *nested*
        // cohorts — a task that opens a cohort — are exercised end-to-end
        // by the batch-with-parallel-sweeps pipeline test.)
        let exec = Executor::spawn_pool(1);
        let a = ProbeShare::new();
        let b = ProbeShare::new();
        exec.with_workspace(|ws| {
            let mut ctx = TaskContext::new(ws);
            exec.run_cohort(Task::Probe(&a), 2, &mut ctx);
            exec.run_cohort(Task::Probe(&b), 3, &mut ctx);
        });
        assert_eq!(a.hits(), 3);
        assert_eq!(b.hits(), 4);
    }

    #[test]
    fn pool_registry_caches_by_width() {
        let a = Executor::pool(2);
        let b = Executor::pool(2);
        assert!(Arc::ptr_eq(&a.shared, &b.shared));
        let c = Executor::pool(3);
        assert!(!Arc::ptr_eq(&a.shared, &c.shared));
        assert_eq!(c.workers(), 3);
    }

    #[test]
    fn stats_count_probe_executions() {
        let exec = Executor::spawn_pool(1);
        let before = exec.stats();
        assert_eq!(before.tasks_executed, 0);
        assert_eq!(probe_cohort(&exec, 4), 5);
        let after = exec.stats();
        assert_eq!(after.probes, 5);
        assert_eq!(after.tasks_executed, 5);
        assert_eq!(after.workers, 1);
    }

    #[test]
    fn current_binding_is_cleared_after_a_cohort() {
        assert!(Executor::current().is_none());
        let exec = Executor::spawn_pool(1);
        assert_eq!(probe_cohort(&exec, 1), 2);
        // The cohort owner's pool binding must not leak past run_cohort.
        assert!(Executor::current().is_none());
    }

    #[test]
    fn caught_cohort_surfaces_the_payload_without_unwinding() {
        let exec = Executor::spawn_pool(1);
        let probe = ProbeShare::new();
        let result = exec.run_caught(Task::PanicProbe(&probe), 2);
        let payload = result.expect_err("panic payload must surface as Err");
        let msg = payload
            .downcast_ref::<&str>()
            .expect("PanicProbe panics with a &str");
        assert!(msg.contains("by design"));
        assert_eq!(probe.hits(), 3, "all memberships ran before returning");
        assert_eq!(probe_cohort(&exec, 2), 3, "pool survives caught panics");
    }

    #[test]
    fn panicking_cohort_does_not_leak_workspace_checkouts() {
        // Zero workers: every membership (and its workspace checkout)
        // executes on the owner thread, so the checkout-pool length is
        // deterministic at every observation point.
        let exec = Executor::spawn_pool(0);
        assert_eq!(probe_cohort(&exec, 3), 4); // prime the checkout pool
        let before = exec.shared.workspaces.lock().len();
        let probe = ProbeShare::new();
        assert!(exec.run_caught(Task::PanicProbe(&probe), 3).is_err());
        assert_eq!(probe.hits(), 4, "latch completed every panicked member");
        assert_eq!(
            exec.shared.workspaces.lock().len(),
            before,
            "every checkout must be returned despite the unwinds"
        );
        assert_eq!(probe_cohort(&exec, 2), 3, "pool stays usable");
    }

    #[test]
    fn injector_backpressure_exercise_loses_no_memberships() {
        let copies = injector_capacity() + 257;
        assert_eq!(
            Executor::exercise_injector_backpressure(copies),
            copies + 1,
            "full-ring backpressure must degrade to inline execution, \
             never drop a membership"
        );
    }

    #[test]
    fn cohort_member_panic_is_propagated_and_the_pool_survives() {
        // Every membership of this cohort panics (worker-side and inline
        // alike); run_cohort must still complete the whole cohort, then
        // re-raise, and the pool must stay usable afterwards.
        let exec = Executor::spawn_pool(1);
        let probe = ProbeShare::new();
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            exec.run(Task::PanicProbe(&probe), 2);
        }));
        assert!(result.is_err(), "panic must propagate to the cohort owner");
        assert_eq!(probe.hits(), 3, "all memberships ran before re-raising");
        assert_eq!(probe_cohort(&exec, 2), 3, "pool survives task panics");
    }
}
