//! Search-band estimation (paper Sec. IV.A).
//!
//! The lower bound is zero; the upper bound is the magnitude of the largest
//! Hamiltonian eigenvalue, obtained with a restarted Arnoldi iteration on
//! `M` itself (no shift-and-invert), then inflated by a small safety margin.

use crate::error::SolverError;
use pheig_arnoldi::single_shift::largest_eigenvalue_magnitude;
use pheig_arnoldi::SingleShiftOptions;
use pheig_hamiltonian::HamiltonianOp;
use pheig_model::StateSpace;

/// Safety inflation applied to the largest-eigenvalue estimate.
pub const BAND_MARGIN: f64 = 1.02;

/// Estimates the search band `[0, omega_max]`.
///
/// # Errors
///
/// Returns [`SolverError::BandEstimation`] when the Arnoldi estimate fails
/// (degenerate models).
pub fn estimate_band(
    ss: &StateSpace,
    opts: &SingleShiftOptions,
) -> Result<(f64, f64), SolverError> {
    let op = HamiltonianOp::new(ss)?;
    let mag = largest_eigenvalue_magnitude(&op, opts)
        .map_err(|e| SolverError::BandEstimation(e.to_string()))?;
    // A cheap structural sanity floor: the band should at least reach the
    // fastest pole resonance.
    let floor = ss.a().max_natural_frequency();
    Ok((0.0, (mag * BAND_MARGIN).max(floor)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pheig_hamiltonian::dense_hamiltonian;
    use pheig_linalg::eig::eig_real;
    use pheig_model::generator::{generate_case, CaseSpec};

    #[test]
    fn band_covers_the_spectrum() {
        let ss = generate_case(&CaseSpec::new(14, 2).with_seed(20))
            .unwrap()
            .realize();
        let (lo, hi) = estimate_band(&ss, &SingleShiftOptions::new()).unwrap();
        assert_eq!(lo, 0.0);
        // Every dense eigenvalue's imaginary part is inside the band.
        let eigs = eig_real(&dense_hamiltonian(&ss).unwrap()).unwrap();
        for z in eigs {
            assert!(
                z.im.abs() <= hi * 1.0001,
                "eigenvalue {z} outside band [0, {hi}]"
            );
        }
    }

    #[test]
    fn band_is_tight_within_reason() {
        let ss = generate_case(&CaseSpec::new(20, 2).with_seed(3))
            .unwrap()
            .realize();
        let (_, hi) = estimate_band(&ss, &SingleShiftOptions::new()).unwrap();
        let eigs = eig_real(&dense_hamiltonian(&ss).unwrap()).unwrap();
        let max_mag = eigs.iter().map(|z| z.abs()).fold(0.0, f64::max);
        assert!(
            hi <= max_mag * 1.5,
            "band {hi} vs largest magnitude {max_mag}"
        );
    }
}
