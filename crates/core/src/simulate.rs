//! Deterministic virtual-time simulation of the parallel solver.
//!
//! **Why this exists.** The paper measures speedups on a 16-core Opteron
//! blade. On hosts with fewer cores, wall-clock speedup physically cannot
//! appear, so this module replays the *identical* scheduler state machine
//! with `T` virtual workers under a discrete-event clock. Each single-shift
//! iteration is actually executed (serially, on the host) and charged its
//! deterministic cost in work units (`matvecs + 3 * restarts` — operator
//! applications dominate the real cost, and the per-restart surcharge
//! covers the projected eigensolves; per-shift setup is `O(p^2/n)` of one
//! matvec and is neglected). The simulated makespan then plays the role of
//! the parallel wall time:
//!
//! ```text
//! speedup(T) = serial_total_cost / makespan(T)
//! ```
//!
//! Because scheduling *decisions* (which tentative shifts get deleted,
//! where intervals split) depend on completion order, the simulation
//! reproduces the paper's superlinear-speedup mechanism faithfully —
//! including its dependence on the number of threads and on the random
//! Arnoldi start vectors (vary `opts.seed` to reproduce Fig. 6 error bars).

use crate::band::estimate_band;
use crate::error::SolverError;
use crate::scheduler::{Scheduler, SchedulerStats, ShiftTask};
use crate::solver::{cost_units, run_shift, SolverOptions};
use crate::spectrum;
use pheig_arnoldi::single_shift::SingleShiftOutcome;
use pheig_arnoldi::SweepControl;
use pheig_model::StateSpace;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Scheduling flavor for the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScheduleMode {
    /// The paper's dynamic scheduler (tentative shifts covered by other
    /// disks are deleted).
    Dynamic,
    /// Static pre-distributed grid of `n_shifts` shifts, no dynamic
    /// deletion — the strawman of Sec. IV used as an ablation baseline.
    StaticGrid {
        /// Number of pre-distributed shifts.
        n_shifts: usize,
    },
}

/// Result of a virtual-time run.
#[derive(Debug, Clone)]
pub struct SimulatedRun {
    /// Virtual workers used.
    pub threads: usize,
    /// Virtual-clock completion time (work units).
    pub makespan: u64,
    /// Total work executed in this run (work units). Differs across thread
    /// counts because the scheduling decisions differ.
    pub total_cost: u64,
    /// Crossing frequencies found (must agree with the real solver).
    pub frequencies: Vec<f64>,
    /// Scheduler counters.
    pub stats: SchedulerStats,
    /// Number of single-shift iterations executed.
    pub shifts_processed: usize,
}

impl SimulatedRun {
    /// Speedup of this run against a reference serial cost.
    pub fn speedup_vs(&self, serial_total_cost: u64) -> f64 {
        serial_total_cost as f64 / self.makespan.max(1) as f64
    }
}

struct Event {
    finish: u64,
    seq: u64,
    task: ShiftTask,
    outcome: SingleShiftOutcome,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        (self.finish, self.seq) == (other.finish, other.seq)
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.finish, self.seq).cmp(&(other.finish, other.seq))
    }
}

/// Simulates a `threads`-worker run of the multi-shift solver.
///
/// All single-shift iterations are executed for real (serially); only the
/// clock is virtual. Fully deterministic for a given `(opts.seed, threads,
/// mode)` triple.
///
/// # Errors
///
/// Same failure modes as [`crate::solver::find_imaginary_eigenvalues`].
pub fn simulate_parallel(
    ss: &StateSpace,
    threads: usize,
    opts: &SolverOptions,
    mode: ScheduleMode,
) -> Result<SimulatedRun, SolverError> {
    let threads = threads.max(1);
    let band = match opts.band {
        Some(b) => b,
        None => estimate_band(ss, &opts.arnoldi)?,
    };
    let scale = crate::solver::pole_scale(ss);
    let mut scheduler = match mode {
        ScheduleMode::Dynamic => {
            Scheduler::new(band, (opts.kappa.max(2) * threads).max(4), opts.alpha)
        }
        ScheduleMode::StaticGrid { n_shifts } => {
            let mut s = Scheduler::new(band, n_shifts.max(2), opts.alpha);
            s.set_delete_covered(false);
            s
        }
    };

    // The simulator executes shifts inline on the caller's thread; one
    // workspace is reused across every simulated shift.
    let mut ws = pheig_arnoldi::ArnoldiWorkspace::new();
    let mut clock: u64 = 0;
    let mut seq: u64 = 0;
    let mut idle = threads;
    let mut heap: BinaryHeap<Reverse<Event>> = BinaryHeap::new();
    let mut total_cost: u64 = 0;
    let mut all_pairs = Vec::new();
    let mut processed = 0usize;

    loop {
        // Fill idle workers with available tentative shifts at the current
        // virtual time.
        while idle > 0 {
            match scheduler.next_shift() {
                Some(task) => {
                    // The simulator's cost model is cold-start by design:
                    // virtual-time speedup curves must not depend on the
                    // completion-order-dependent recycling pool.
                    let outcome =
                        run_shift(ss, &task, scale, opts, &mut ws, &[], &SweepControl::none())?;
                    let cost = cost_units(&outcome);
                    total_cost += cost;
                    heap.push(Reverse(Event {
                        finish: clock + cost,
                        seq,
                        task,
                        outcome,
                    }));
                    seq += 1;
                    idle -= 1;
                }
                None => break,
            }
        }
        match heap.pop() {
            Some(Reverse(ev)) => {
                clock = ev.finish;
                scheduler.complete(&ev.task, ev.outcome.theta.im, ev.outcome.radius);
                all_pairs.extend(ev.outcome.in_disk);
                processed += 1;
                idle += 1;
            }
            None => break,
        }
    }
    debug_assert!(scheduler.is_done());

    let axis_tol = crate::solver::axis_tolerance(opts, scale);
    let eigs = spectrum::extract_imaginary(&all_pairs, axis_tol);
    let eigenpairs = spectrum::dedupe(eigs, axis_tol.max(1e-12 * scale));
    Ok(SimulatedRun {
        threads,
        makespan: clock,
        total_cost,
        frequencies: spectrum::frequencies(&eigenpairs),
        stats: scheduler.stats(),
        shifts_processed: processed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::find_imaginary_eigenvalues;
    use pheig_model::generator::{generate_case, CaseSpec};

    fn test_model() -> StateSpace {
        generate_case(&CaseSpec::new(30, 3).with_seed(12).with_target_crossings(6))
            .unwrap()
            .realize()
    }

    #[test]
    fn simulation_is_deterministic() {
        let ss = test_model();
        let a =
            simulate_parallel(&ss, 4, &SolverOptions::default(), ScheduleMode::Dynamic).unwrap();
        let b =
            simulate_parallel(&ss, 4, &SolverOptions::default(), ScheduleMode::Dynamic).unwrap();
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.total_cost, b.total_cost);
        assert_eq!(a.frequencies, b.frequencies);
    }

    #[test]
    fn simulated_frequencies_match_real_solver() {
        let ss = test_model();
        let real = find_imaginary_eigenvalues(&ss, &SolverOptions::default()).unwrap();
        let sim =
            simulate_parallel(&ss, 4, &SolverOptions::default(), ScheduleMode::Dynamic).unwrap();
        assert_eq!(sim.frequencies.len(), real.frequencies.len());
        for (a, b) in sim.frequencies.iter().zip(&real.frequencies) {
            assert!((a - b).abs() < 1e-5 * real.band.1);
        }
    }

    #[test]
    fn single_worker_makespan_equals_total_cost() {
        let ss = test_model();
        let sim =
            simulate_parallel(&ss, 1, &SolverOptions::default(), ScheduleMode::Dynamic).unwrap();
        assert_eq!(sim.makespan, sim.total_cost);
        assert!(sim.speedup_vs(sim.total_cost) >= 0.999);
    }

    #[test]
    fn more_workers_never_slow_the_makespan_much() {
        // Makespan with T workers should not exceed the serial makespan
        // (the schedule can differ, but parallelism cannot lose by a wide
        // margin on the same task set).
        let ss = test_model();
        let s1 =
            simulate_parallel(&ss, 1, &SolverOptions::default(), ScheduleMode::Dynamic).unwrap();
        let s4 =
            simulate_parallel(&ss, 4, &SolverOptions::default(), ScheduleMode::Dynamic).unwrap();
        assert!(
            s4.makespan <= s1.makespan,
            "4-worker makespan {} vs serial {}",
            s4.makespan,
            s1.makespan
        );
        assert!(s4.speedup_vs(s1.total_cost) >= 1.0);
    }

    #[test]
    fn static_grid_processes_every_shift() {
        let ss = test_model();
        let sim = simulate_parallel(
            &ss,
            4,
            &SolverOptions::default(),
            ScheduleMode::StaticGrid { n_shifts: 12 },
        )
        .unwrap();
        // All 12 grid shifts processed (plus any splits), no deletions.
        assert!(sim.shifts_processed >= 12);
        assert_eq!(sim.stats.deleted_tentative, 0);
        // Results still correct.
        let real = find_imaginary_eigenvalues(&ss, &SolverOptions::default()).unwrap();
        assert_eq!(sim.frequencies.len(), real.frequencies.len());
    }
}
