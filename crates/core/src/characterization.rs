//! Passivity characterization: turning the imaginary-eigenvalue set
//! `Omega` into singular-value violation bands.
//!
//! The crossing frequencies partition `[0, inf)` into intervals on which
//! `sigma_max(H(j omega))` stays on one side of 1; sampling one interior
//! point per interval classifies it. Since `sigma_max(H(j inf)) =
//! sigma_max(D) < 1` by the strict asymptotic passivity assumption, the
//! model is passive exactly when `Omega` is empty (paper Sec. II).

use pheig_linalg::LinalgError;
use pheig_model::transfer::{golden_section_max, sigma_max, TransferEval};

/// One frequency band where `sigma_max > 1`.
#[derive(Debug, Clone, PartialEq)]
pub struct ViolationBand {
    /// Lower band edge (a crossing frequency, or 0 for a DC violation).
    pub lo: f64,
    /// Upper band edge (a crossing frequency).
    pub hi: f64,
    /// Peak singular value inside the band.
    pub peak_sigma: f64,
    /// Frequency of the peak.
    pub peak_omega: f64,
}

impl ViolationBand {
    /// Band width.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Violation severity metric `width * (peak - 1)` used by the
    /// enforcement loop to monitor progress.
    pub fn severity(&self) -> f64 {
        self.width() * (self.peak_sigma - 1.0).max(0.0)
    }
}

/// A full passivity report.
#[derive(Debug, Clone, PartialEq)]
pub struct PassivityReport {
    /// The crossing frequencies used (sorted).
    pub crossings: Vec<f64>,
    /// Bands where the unit threshold is exceeded.
    pub bands: Vec<ViolationBand>,
    /// `sigma_max` sampled at each crossing (should be ~1; a diagnostic of
    /// eigenvalue quality).
    pub sigma_at_crossings: Vec<f64>,
}

impl PassivityReport {
    /// `true` when no violation band exists.
    pub fn is_passive(&self) -> bool {
        self.bands.is_empty()
    }

    /// Total violation severity (0 when passive).
    pub fn total_severity(&self) -> f64 {
        self.bands.iter().map(ViolationBand::severity).sum()
    }

    /// Worst singular value over all bands (1 when passive).
    pub fn max_sigma(&self) -> f64 {
        self.bands.iter().map(|b| b.peak_sigma).fold(1.0, f64::max)
    }
}

/// Builds a passivity report from the crossing set `Omega`.
///
/// `crossings` must be sorted ascending (as produced by the solvers).
/// Between consecutive crossings the singular-value curve is classified by
/// a midpoint sample; peaks inside violating intervals are located by a
/// coarse scan refined with golden-section search.
///
/// # Errors
///
/// Propagates SVD failures from the transfer evaluation.
pub fn characterize(
    model: &impl TransferEval,
    crossings: &[f64],
) -> Result<PassivityReport, LinalgError> {
    let crossings: Vec<f64> = crossings.to_vec();
    let sigma_at_crossings = crossings
        .iter()
        .map(|&w| sigma_max(model, w))
        .collect::<Result<Vec<_>, _>>()?;
    if crossings.is_empty() {
        // No crossings: sigma never touches 1, and sigma(inf) < 1, so the
        // model is passive everywhere.
        return Ok(PassivityReport {
            crossings,
            bands: Vec::new(),
            sigma_at_crossings,
        });
    }
    // Interval boundaries: 0, crossings..., and a representative point
    // beyond the last crossing (the curve there decays to sigma(D) < 1).
    let mut bands = Vec::new();
    let mut edges = Vec::with_capacity(crossings.len() + 2);
    edges.push(0.0);
    edges.extend(crossings.iter().copied());
    // PANIC-SAFE: the empty-crossings case returned above.
    #[allow(clippy::expect_used)]
    let last = *crossings.last().expect("guarded by the early return");
    let tail = last * 1.25 + 1.0;
    edges.push(tail);
    for w in edges.windows(2) {
        let (lo, hi) = (w[0], w[1]);
        if hi - lo <= 0.0 {
            continue;
        }
        let mid = 0.5 * (lo + hi);
        let s_mid = sigma_max(model, mid)?;
        if s_mid > 1.0 {
            // Violating interval: locate the peak (coarse scan + golden
            // refinement around the best coarse point).
            let samples = 17;
            let mut best_w = mid;
            let mut best_s = s_mid;
            for k in 0..samples {
                let x = lo + (hi - lo) * (k as f64 + 0.5) / samples as f64;
                let s = sigma_max(model, x)?;
                if s > best_s {
                    best_s = s;
                    best_w = x;
                }
            }
            let window = (hi - lo) / samples as f64;
            let (peak_omega, peak_sigma) = golden_section_max(
                |x| sigma_max(model, x).unwrap_or(0.0),
                (best_w - window).max(lo),
                (best_w + window).min(hi),
                1e-9 * (hi - lo).max(1.0),
            );
            let (peak_omega, peak_sigma) = if peak_sigma >= best_s {
                (peak_omega, peak_sigma)
            } else {
                (best_w, best_s)
            };
            // The band's upper edge is the crossing, except for the open
            // tail interval, which cannot violate (checked by sigma(D) < 1
            // at construction) but is reported defensively if it does.
            bands.push(ViolationBand {
                lo,
                hi,
                peak_sigma,
                peak_omega,
            });
        }
    }
    // The synthetic tail edge is not a real crossing; clamp its band (if
    // any) to end at the last genuine crossing marker.
    if let Some(b) = bands.last_mut() {
        if (b.hi - tail).abs() < f64::EPSILON * tail {
            b.hi = f64::INFINITY;
        }
    }
    Ok(PassivityReport {
        crossings,
        bands,
        sigma_at_crossings,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{find_imaginary_eigenvalues, SolverOptions};
    use pheig_model::generator::{generate_case, CaseSpec};

    #[test]
    fn passive_model_reports_passive() {
        let model =
            generate_case(&CaseSpec::new(20, 2).with_seed(8).with_target_crossings(0)).unwrap();
        let ss = model.realize();
        let out = find_imaginary_eigenvalues(&ss, &SolverOptions::default()).unwrap();
        let report = characterize(&model, &out.frequencies).unwrap();
        assert!(report.is_passive());
        assert_eq!(report.total_severity(), 0.0);
        assert_eq!(report.max_sigma(), 1.0);
    }

    #[test]
    fn nonpassive_model_bands_bracket_sigma_peaks() {
        let model =
            generate_case(&CaseSpec::new(24, 2).with_seed(31).with_target_crossings(4)).unwrap();
        let ss = model.realize();
        let out = find_imaginary_eigenvalues(&ss, &SolverOptions::default()).unwrap();
        let report = characterize(&model, &out.frequencies).unwrap();
        assert!(!report.is_passive());
        // sigma at every crossing is ~1 (eigenvalues are genuine crossings).
        for (&w, &s) in report.crossings.iter().zip(&report.sigma_at_crossings) {
            assert!((s - 1.0).abs() < 1e-5, "sigma({w}) = {s}");
        }
        for b in &report.bands {
            assert!(b.peak_sigma > 1.0);
            assert!(b.peak_omega >= b.lo && b.peak_omega <= b.hi.min(1e12));
            // Peak must indeed violate when sampled directly.
            let s = sigma_max(&model, b.peak_omega).unwrap();
            assert!(s > 1.0);
            assert!(b.severity() > 0.0);
        }
        // Bands alternate with passive gaps: band edges are crossings.
        for b in &report.bands {
            if b.lo > 0.0 {
                assert!(report.crossings.iter().any(|&c| (c - b.lo).abs() < 1e-9));
            }
        }
    }

    #[test]
    fn empty_crossings_shortcut() {
        let model =
            generate_case(&CaseSpec::new(12, 2).with_seed(1).with_target_crossings(0)).unwrap();
        let report = characterize(&model, &[]).unwrap();
        assert!(report.is_passive());
        assert!(report.sigma_at_crossings.is_empty());
    }
}
