//! Error type for the passivity solvers.

use std::error::Error;
use std::fmt;

/// Errors from the multi-shift drivers, characterization, and enforcement.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum SolverError {
    /// A single-shift iteration kept failing even after reseeded retries.
    ShiftFailed {
        /// The shift frequency that could not be processed.
        omega: f64,
        /// The final attempt's error, rendered.
        reason: String,
    },
    /// The search band could not be estimated.
    BandEstimation(String),
    /// A band override in [`crate::solver::SolverOptions`] is unusable:
    /// non-finite, inverted (`hi <= lo`), or negative.
    InvalidBand {
        /// Lower edge as given.
        lo: f64,
        /// Upper edge as given.
        hi: f64,
    },
    /// The initial-radius overlap factor is unusable: the paper requires
    /// `alpha >= 1` (Eq. (23)), and NaN breaks the scheduler's interval
    /// arithmetic.
    InvalidAlpha {
        /// The factor as given.
        alpha: f64,
    },
    /// Enforcement did not reach a passive model within its iteration
    /// budget.
    EnforcementStalled {
        /// Iterations performed.
        iterations: usize,
        /// Remaining violation metric (sum of band widths times excess).
        residual_violation: f64,
    },
    /// A task body panicked inside the execution layer. The unwind was
    /// contained at the cohort boundary (the latch still completed, the
    /// pooled workspace was returned) and surfaced as this typed error
    /// instead of aborting the process.
    TaskPanicked {
        /// The panic payload rendered to text (`&str`/`String` payloads
        /// verbatim; anything else a placeholder).
        message: String,
    },
    /// A `PHEIG_FAULT_PLAN` specification could not be parsed.
    InvalidFaultPlan(String),
    /// A downstream Arnoldi failure.
    Arnoldi(pheig_arnoldi::ArnoldiError),
    /// A downstream Hamiltonian-operator failure.
    Hamiltonian(pheig_hamiltonian::HamiltonianError),
    /// A downstream dense-kernel failure.
    Linalg(pheig_linalg::LinalgError),
    /// A downstream model failure.
    Model(pheig_model::ModelError),
    /// A Vector Fitting failure in the pipeline's identification stage.
    VectorFit(pheig_vectorfit::VectorFitError),
}

impl SolverError {
    /// Renders a panic payload contained by `catch_unwind` as a typed
    /// [`SolverError::TaskPanicked`].
    pub fn from_panic(payload: &(dyn std::any::Any + Send)) -> Self {
        let message = if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_string()
        };
        SolverError::TaskPanicked { message }
    }
}

impl fmt::Display for SolverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolverError::ShiftFailed { omega, reason } => {
                write!(
                    f,
                    "single-shift iteration at omega = {omega} failed: {reason}"
                )
            }
            SolverError::BandEstimation(m) => write!(f, "search band estimation failed: {m}"),
            SolverError::InvalidBand { lo, hi } => write!(
                f,
                "invalid band override [{lo}, {hi}]: edges must be finite, \
                 non-negative, and ordered lo < hi"
            ),
            SolverError::InvalidAlpha { alpha } => {
                write!(
                    f,
                    "invalid overlap factor alpha = {alpha}: must be finite and >= 1"
                )
            }
            SolverError::EnforcementStalled {
                iterations,
                residual_violation,
            } => write!(
                f,
                "passivity enforcement stalled after {iterations} iterations \
                 (residual violation {residual_violation:.3e})"
            ),
            SolverError::TaskPanicked { message } => {
                write!(f, "a solver task panicked (contained): {message}")
            }
            SolverError::InvalidFaultPlan(m) => {
                write!(f, "invalid PHEIG_FAULT_PLAN specification: {m}")
            }
            SolverError::Arnoldi(e) => write!(f, "arnoldi failure: {e}"),
            SolverError::Hamiltonian(e) => write!(f, "hamiltonian failure: {e}"),
            SolverError::Linalg(e) => write!(f, "linear algebra failure: {e}"),
            SolverError::Model(e) => write!(f, "model failure: {e}"),
            SolverError::VectorFit(e) => write!(f, "vector fitting failure: {e}"),
        }
    }
}

impl Error for SolverError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SolverError::Arnoldi(e) => Some(e),
            SolverError::Hamiltonian(e) => Some(e),
            SolverError::Linalg(e) => Some(e),
            SolverError::Model(e) => Some(e),
            SolverError::VectorFit(e) => Some(e),
            _ => None,
        }
    }
}

impl From<pheig_arnoldi::ArnoldiError> for SolverError {
    fn from(e: pheig_arnoldi::ArnoldiError) -> Self {
        SolverError::Arnoldi(e)
    }
}
impl From<pheig_hamiltonian::HamiltonianError> for SolverError {
    fn from(e: pheig_hamiltonian::HamiltonianError) -> Self {
        SolverError::Hamiltonian(e)
    }
}
impl From<pheig_linalg::LinalgError> for SolverError {
    fn from(e: pheig_linalg::LinalgError) -> Self {
        SolverError::Linalg(e)
    }
}
impl From<pheig_model::ModelError> for SolverError {
    fn from(e: pheig_model::ModelError) -> Self {
        SolverError::Model(e)
    }
}
impl From<pheig_vectorfit::VectorFitError> for SolverError {
    fn from(e: pheig_vectorfit::VectorFitError) -> Self {
        SolverError::VectorFit(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        let e = SolverError::ShiftFailed {
            omega: 2.0,
            reason: "x".into(),
        };
        assert!(e.to_string().contains("2"));
        let e = SolverError::EnforcementStalled {
            iterations: 7,
            residual_violation: 0.5,
        };
        assert!(e.to_string().contains('7'));
        let e: SolverError = pheig_linalg::LinalgError::Singular { at: 0 }.into();
        assert!(e.source().is_some());
    }

    #[test]
    fn panic_payloads_render_to_typed_errors() {
        let p: Box<dyn std::any::Any + Send> = Box::new("boom");
        assert!(SolverError::from_panic(p.as_ref())
            .to_string()
            .contains("boom"));
        let p: Box<dyn std::any::Any + Send> = Box::new(String::from("kaboom"));
        assert!(SolverError::from_panic(p.as_ref())
            .to_string()
            .contains("kaboom"));
        let p: Box<dyn std::any::Any + Send> = Box::new(17usize);
        assert!(SolverError::from_panic(p.as_ref())
            .to_string()
            .contains("non-string"));
    }
}
