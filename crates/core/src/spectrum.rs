//! Bookkeeping for the set `Omega` of purely imaginary Hamiltonian
//! eigenvalues.

use pheig_arnoldi::ConvergedEigenpair;
use pheig_linalg::C64;

/// A located purely imaginary Hamiltonian eigenvalue with its eigenvector
/// (kept for passivity enforcement sensitivities).
#[derive(Debug, Clone)]
pub struct ImaginaryEigenpair {
    /// Crossing frequency `omega >= 0` (rad/s).
    pub omega: f64,
    /// The raw eigenvalue as computed (real part is round-off).
    pub lambda: C64,
    /// Unit-norm eigenvector in `C^{2n}`.
    pub vector: Vec<C64>,
    /// Eigenvalue error estimate from the Arnoldi certificate.
    pub error_estimate: f64,
}

/// Classifies converged eigenpairs, keeping those on the imaginary axis.
///
/// `axis_tol` is the absolute real-part tolerance (tie it to the Arnoldi
/// eigenvalue tolerance times a safety factor). Eigenvalues with negative
/// imaginary part are folded onto `omega = |Im lambda|` (the spectrum is
/// symmetric; the disks near `omega = 0` can dip below the axis).
pub fn extract_imaginary(pairs: &[ConvergedEigenpair], axis_tol: f64) -> Vec<ImaginaryEigenpair> {
    pairs
        .iter()
        .filter(|e| e.lambda.re.abs() <= axis_tol)
        .map(|e| ImaginaryEigenpair {
            omega: e.lambda.im.abs(),
            lambda: e.lambda,
            vector: e.vector.clone(),
            error_estimate: e.error_estimate,
        })
        .collect()
}

/// Sorts by `omega` and merges duplicates closer than `merge_tol`
/// (overlapping certified disks legitimately find the same eigenvalue
/// twice; the better error estimate wins).
pub fn dedupe(mut eigs: Vec<ImaginaryEigenpair>, merge_tol: f64) -> Vec<ImaginaryEigenpair> {
    eigs.sort_by(|a, b| a.omega.total_cmp(&b.omega));
    let mut out: Vec<ImaginaryEigenpair> = Vec::with_capacity(eigs.len());
    for e in eigs {
        match out.last_mut() {
            Some(last) if (e.omega - last.omega).abs() <= merge_tol => {
                if e.error_estimate < last.error_estimate {
                    *last = e;
                }
            }
            _ => out.push(e),
        }
    }
    out
}

/// The crossing frequencies of a deduped eigenpair list.
pub fn frequencies(eigs: &[ImaginaryEigenpair]) -> Vec<f64> {
    eigs.iter().map(|e| e.omega).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(re: f64, im: f64, err: f64) -> ConvergedEigenpair {
        ConvergedEigenpair {
            lambda: C64::new(re, im),
            vector: vec![],
            error_estimate: err,
        }
    }

    #[test]
    fn filters_by_axis_tolerance() {
        let pairs = vec![
            pair(1e-12, 2.0, 1e-10),
            pair(0.1, 3.0, 1e-10),
            pair(-1e-12, 4.0, 1e-10),
        ];
        let out = extract_imaginary(&pairs, 1e-9);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].omega, 2.0);
        assert_eq!(out[1].omega, 4.0);
    }

    #[test]
    fn folds_negative_imaginary() {
        let pairs = vec![pair(0.0, -1.5, 1e-10)];
        let out = extract_imaginary(&pairs, 1e-9);
        assert_eq!(out[0].omega, 1.5);
    }

    #[test]
    fn dedupe_merges_and_keeps_best() {
        let eigs = vec![
            ImaginaryEigenpair {
                omega: 1.0,
                lambda: C64::from_imag(1.0),
                vector: vec![],
                error_estimate: 1e-8,
            },
            ImaginaryEigenpair {
                omega: 1.0 + 1e-9,
                lambda: C64::from_imag(1.0 + 1e-9),
                vector: vec![],
                error_estimate: 1e-12,
            },
            ImaginaryEigenpair {
                omega: 2.0,
                lambda: C64::from_imag(2.0),
                vector: vec![],
                error_estimate: 1e-8,
            },
        ];
        let out = dedupe(eigs, 1e-6);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].error_estimate, 1e-12);
        assert_eq!(frequencies(&out), vec![1.0 + 1e-9, 2.0]);
    }

    #[test]
    fn dedupe_respects_ordering() {
        let eigs = vec![
            ImaginaryEigenpair {
                omega: 3.0,
                lambda: C64::from_imag(3.0),
                vector: vec![],
                error_estimate: 0.0,
            },
            ImaginaryEigenpair {
                omega: 1.0,
                lambda: C64::from_imag(1.0),
                vector: vec![],
                error_estimate: 0.0,
            },
        ];
        let out = dedupe(eigs, 1e-9);
        assert_eq!(frequencies(&out), vec![1.0, 3.0]);
    }
}
